(* Fixed-stride flat tuple arena: one growable [int array] holding all
   tuples of arity [k] back to back at stride [k].  A tuple is
   identified by its slot (insertion index); its fields live at
   [data.(slot * k .. slot * k + k - 1)].  No per-tuple heap object
   exists — the join kernel, the hash indexes and the delta scans all
   read fields straight out of [data] through an offset. *)

type slot = int

type t = {
  arity : int;
  mutable data : int array;
  mutable count : int; (* tuples *)
}

let create ?(capacity = 16) ~arity () =
  if arity < 0 then invalid_arg "Arena.create";
  { arity; data = Array.make (max 1 (capacity * arity)) 0; count = 0 }

let arity t = t.arity

let length t = t.count

let is_empty t = t.count = 0

let data t = t.data

let offset t slot = slot * t.arity

let ensure t extra_tuples =
  let need = (t.count + extra_tuples) * t.arity in
  if need > Array.length t.data then begin
    let cap = max need (max 16 (Array.length t.data * 2)) in
    let data' = Array.make cap 0 in
    Array.blit t.data 0 data' 0 (t.count * t.arity);
    t.data <- data'
  end

let push t (tup : Tuple.t) =
  if Array.length tup <> t.arity then invalid_arg "Arena.push: arity mismatch";
  ensure t 1;
  Array.blit tup 0 t.data (t.count * t.arity) t.arity;
  let slot = t.count in
  t.count <- slot + 1;
  slot

let push_slice t (src : int array) off =
  ensure t 1;
  Array.blit src off t.data (t.count * t.arity) t.arity;
  let slot = t.count in
  t.count <- slot + 1;
  slot

(* One blit for [n] tuples: the consumer side of a packed delta frame. *)
let append_block t (src : int array) ~off ~tuples =
  ensure t tuples;
  Array.blit src off t.data (t.count * t.arity) (tuples * t.arity);
  let first = t.count in
  t.count <- first + tuples;
  first

let set_slot t slot (tup : Tuple.t) =
  if slot < 0 || slot >= t.count then invalid_arg "Arena.set_slot";
  if Array.length tup <> t.arity then invalid_arg "Arena.set_slot: arity mismatch";
  Array.blit tup 0 t.data (slot * t.arity) t.arity

let get t slot =
  if slot < 0 || slot >= t.count then invalid_arg "Arena.get";
  Array.sub t.data (slot * t.arity) t.arity

let read t slot col = t.data.(slot * t.arity + col)

let iter_slices t f =
  let data = t.data and k = t.arity in
  let off = ref 0 in
  for _ = 1 to t.count do
    f data !off;
    off := !off + k
  done

let clear t = t.count <- 0

(* Rollback to a recovery watermark: slots >= [count] become invalid,
   the surviving prefix keeps its slots and contents.  The backing
   buffer is retained (no shrink) — a recovered run re-fills it. *)
let truncate t ~count =
  if count < 0 || count > t.count then invalid_arg "Arena.truncate";
  t.count <- count
