(** Fixed-stride flat tuple arena.

    One growable [int array] holds every tuple of a relation (or of a
    per-iteration delta) of arity [k], back to back at stride [k].  A
    tuple is named by its [slot] — its insertion index — and its fields
    live at [data t .(offset t slot + c)].  Nothing on the hot path
    materializes a boxed [int array] per tuple: the join kernel binds
    registers through an offset cursor, the hash indexes store slot
    lists and hash key columns straight out of the arena, and a packed
    delta frame is absorbed with a single {!append_block} blit.

    Invariants:
    - slots are stable: tuples are only appended (or overwritten in
      place via {!set_slot}); [clear] invalidates all slots at once;
    - [data t] is only valid until the next growth — re-read it after
      any push when holding it across calls;
    - arity-0 arenas are legal ([offset] is always 0; only [length]
      distinguishes tuples). *)

type slot = int

type t

val create : ?capacity:int -> arity:int -> unit -> t
(** [capacity] is a tuple-count hint.  @raise Invalid_argument if
    [arity < 0]. *)

val arity : t -> int

val length : t -> int
(** Number of tuples. *)

val is_empty : t -> bool

val data : t -> int array
(** The backing buffer; valid until the next growth. *)

val offset : t -> slot -> int
(** Flat offset of a slot's first field ([slot * arity]). *)

val push : t -> Tuple.t -> slot
(** Copies a boxed tuple in; returns its slot.
    @raise Invalid_argument on arity mismatch. *)

val push_slice : t -> int array -> int -> slot
(** [push_slice t src off] copies [arity t] ints from [src.(off)] in. *)

val append_block : t -> int array -> off:int -> tuples:int -> slot
(** Appends [tuples] consecutive tuples from a flat source buffer with
    one blit; returns the first new slot. *)

val set_slot : t -> slot -> Tuple.t -> unit
(** Overwrites a tuple in place (delta-group replacement). *)

val get : t -> slot -> Tuple.t
(** Materializes a boxed copy — API edges only. *)

val read : t -> slot -> int -> int
(** [read t slot col] is field [col] of the tuple at [slot]. *)

val iter_slices : t -> (int array -> int -> unit) -> unit
(** [iter_slices t f] calls [f data off] for every tuple, in slot
    order.  [f] must not push into [t] (growth would invalidate
    [data]). *)

val clear : t -> unit

val truncate : t -> count:int -> unit
(** [truncate t ~count] rolls the arena back to its first [count]
    tuples: the surviving prefix keeps its slots, later slots become
    invalid, capacity is retained.  This is the storage half of a
    checkpoint rollback — a watermark recorded at a quiescent point is
    simply [length t].  @raise Invalid_argument unless
    [0 <= count <= length t]. *)
