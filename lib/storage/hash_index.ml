module Vec = Dcd_util.Vec

module Key_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  cols : int array;
  buckets : Tuple.t Vec.t Key_tbl.t;
  mutable total : int;
  scratch : int array; (* probe key buffer: adds to an existing bucket allocate nothing *)
}

let create ~key_cols =
  {
    cols = key_cols;
    buckets = Key_tbl.create 64;
    total = 0;
    scratch = Array.make (Array.length key_cols) 0;
  }

let key_cols t = t.cols

let add t tup =
  for i = 0 to Array.length t.cols - 1 do
    t.scratch.(i) <- tup.(t.cols.(i))
  done;
  let bucket =
    match Key_tbl.find_opt t.buckets t.scratch with
    | Some b -> b
    | None ->
      let b = Vec.create ~capacity:2 () in
      (* the table retains the key: materialize the scratch buffer *)
      Key_tbl.add t.buckets (Array.copy t.scratch) b;
      b
  in
  Vec.push bucket tup;
  t.total <- t.total + 1

let of_tuples ~key_cols tuples =
  let t = create ~key_cols in
  Vec.iter (add t) tuples;
  t

let iter_matches t key f =
  match Key_tbl.find_opt t.buckets key with
  | None -> ()
  | Some bucket -> Vec.iter f bucket

let count_matches t key =
  match Key_tbl.find_opt t.buckets key with
  | None -> 0
  | Some bucket -> Vec.length bucket

let length t = t.total

let distinct_keys t = Key_tbl.length t.buckets
