module Vec = Dcd_util.Vec

(* Arena-backed hash multimap: the index owns a flat copy of every
   indexed tuple (fixed stride = relation arity) and its buckets are
   slot vectors.  Key hashing and key comparison read the key columns
   straight out of the arena — no boxed key is materialized on [add],
   and a probe key is compared field-by-field against the bucket's
   representative slot.

   The bucket directory is open-addressed: [table] maps probe positions
   to bucket ids (+1, 0 = empty); per bucket we keep the cached key
   hash (so directory growth rehashes nothing) and the slot vector. *)

type t = {
  cols : int array;
  mutable arena : Arena.t option; (* created on first add (arity unknown before) *)
  mutable table : int array;
  mutable mask : int;
  bhash : int Vec.t; (* bucket id -> cached key hash *)
  bslots : int Vec.t Vec.t; (* bucket id -> slots *)
  mutable total : int;
}

let directory_capacity hint =
  let rec pow2 p n = if p >= n then p else pow2 (p * 2) n in
  (* size for ~0.75 max load on distinct keys *)
  pow2 64 (max 1 ((hint * 4 / 3) + 1))

let create ?(size_hint = 0) ~key_cols () =
  let cap = directory_capacity size_hint in
  {
    cols = key_cols;
    arena = None;
    table = Array.make cap 0;
    mask = cap - 1;
    bhash = Vec.create ~capacity:(max 16 size_hint) ();
    bslots = Vec.create ~capacity:(max 16 size_hint) ();
    total = 0;
  }

let key_cols t = t.cols

let arena_of t arity =
  match t.arena with
  | Some a -> a
  | None ->
    let a = Arena.create ~capacity:(max 16 (Array.length t.table)) ~arity () in
    t.arena <- Some a;
    a

let nbuckets t = Vec.length t.bhash

(* The comparison loops below are top-level recursion, not local
   [let rec]: a local recursive closure is heap-allocated per call on
   the non-flambda compiler, and these run once per probe. *)
let rec cols_eq_at (data : int array) (cols : int array) b1 b2 i n =
  i = n
  ||
  let c = Array.unsafe_get cols i in
  Array.unsafe_get data (b1 + c) = Array.unsafe_get data (b2 + c)
  && cols_eq_at data cols b1 b2 (i + 1) n

(* key columns of the tuples at two slots agree? *)
let slots_key_equal t arena s1 s2 =
  cols_eq_at (Arena.data arena) t.cols (Arena.offset arena s1) (Arena.offset arena s2) 0
    (Array.length t.cols)

let rec key_eq_cols (key : int array) (data : int array) base (cols : int array) i n =
  i = n
  || Array.unsafe_get key i = Array.unsafe_get data (base + Array.unsafe_get cols i)
     && key_eq_cols key data base cols (i + 1) n

(* boxed probe key vs key columns of the tuple at [slot] *)
let key_matches_slot t arena (key : int array) slot =
  Array.length key = Array.length t.cols
  && key_eq_cols key (Arena.data arena) (Arena.offset arena slot) t.cols 0 (Array.length t.cols)

let grow_directory t =
  let cap = (t.mask + 1) * 2 in
  let table' = Array.make cap 0 in
  let mask' = cap - 1 in
  for bid = 0 to nbuckets t - 1 do
    let i = ref (Vec.get t.bhash bid land mask') in
    while table'.(!i) <> 0 do
      i := (!i + 1) land mask'
    done;
    table'.(!i) <- bid + 1
  done;
  t.table <- table';
  t.mask <- mask'

(* Index the tuple at [slot]; its key hash is computed from the arena. *)
let add_slot t arena slot =
  if nbuckets t * 4 >= (t.mask + 1) * 3 then grow_directory t;
  let h = Arena.(Tuple.hash_cols (data arena) ~base:(offset arena slot)) t.cols in
  let table = t.table and mask = t.mask in
  let i = ref (h land mask) in
  let placed = ref false in
  while not !placed do
    let e = Array.unsafe_get table !i in
    if e = 0 then begin
      let bid = nbuckets t in
      Vec.push t.bhash h;
      let slots = Vec.create ~capacity:2 () in
      Vec.push slots slot;
      Vec.push t.bslots slots;
      table.(!i) <- bid + 1;
      placed := true
    end
    else begin
      let bid = e - 1 in
      if Vec.get t.bhash bid = h && slots_key_equal t arena (Vec.get (Vec.get t.bslots bid) 0) slot
      then begin
        Vec.push (Vec.get t.bslots bid) slot;
        placed := true
      end
      else i := (!i + 1) land mask
    end
  done;
  t.total <- t.total + 1

let add t (tup : Tuple.t) =
  let arena = arena_of t (Array.length tup) in
  let slot = Arena.push arena tup in
  add_slot t arena slot

let add_slice t (src : int array) off ~arity =
  let arena = arena_of t arity in
  let slot = Arena.push_slice arena src off in
  add_slot t arena slot

let of_tuples ?size_hint ~key_cols tuples =
  let size_hint = match size_hint with Some s -> s | None -> Vec.length tuples in
  let t = create ~size_hint ~key_cols () in
  Vec.iter (add t) tuples;
  t

(* bucket lookup for a boxed probe key; -1 if absent *)
let find_bucket t key =
  match t.arena with
  | None -> -1
  | Some arena ->
    let h = Tuple.hash key in
    let table = t.table and mask = t.mask in
    let i = ref (h land mask) in
    let found = ref min_int in
    while !found = min_int do
      let e = Array.unsafe_get table !i in
      if e = 0 then found := -1
      else begin
        let bid = e - 1 in
        if Vec.get t.bhash bid = h
           && key_matches_slot t arena key (Vec.get (Vec.get t.bslots bid) 0)
        then found := bid
        else i := (!i + 1) land mask
      end
    done;
    !found

let iter_matches t key f =
  match find_bucket t key with
  | -1 -> ()
  | bid ->
    let arena = Option.get t.arena in
    let stride = Arena.arity arena in
    let data = Arena.data arena in
    let slots = Vec.get t.bslots bid in
    for i = 0 to Vec.length slots - 1 do
      f data (Vec.get slots i * stride)
    done

let count_matches t key =
  match find_bucket t key with
  | -1 -> 0
  | bid -> Vec.length (Vec.get t.bslots bid)

let length t = t.total

let distinct_keys t = nbuckets t
