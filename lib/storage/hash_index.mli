(** Hash multimap from a key-column projection to tuples, over flat
    storage.

    Built once per partition over each base relation on the join key of
    the rules that scan it (paper Algorithm 1, line 3); the inner side of
    every index join in the physical plan is either one of these or the
    B⁺-tree of a recursive relation.

    The index owns a fixed-stride {!Arena} copy of every indexed tuple;
    buckets are slot vectors and key hashing/comparison read straight
    out of the arena, so neither [add] nor a probe allocates a boxed
    key.  Duplicate tuples are kept (the relation layer deduplicates). *)

type t

val create : ?size_hint:int -> key_cols:int array -> unit -> t
(** [key_cols] are the column positions forming the lookup key.
    [size_hint] (expected tuple count) pre-sizes the bucket directory
    and the arena so bulk loads don't rehash repeatedly. *)

val key_cols : t -> int array

val add : t -> Tuple.t -> unit
(** Appends [tup] (copied into the arena) to the bucket of its
    projected key. *)

val add_slice : t -> int array -> int -> arity:int -> unit
(** [add_slice idx data off ~arity] indexes the tuple stored flat at
    [data.(off .. off+arity-1)] without boxing it. *)

val of_tuples : ?size_hint:int -> key_cols:int array -> Tuple.t Dcd_util.Vec.t -> t
(** [size_hint] defaults to the vector's length. *)

val iter_matches : t -> Tuple.t -> (int array -> int -> unit) -> unit
(** [iter_matches idx key f] calls [f data off] for every indexed tuple
    whose projection equals [key] (a boxed tuple of the same arity as
    [key_cols]); the tuple's fields are [data.(off .. off+arity-1)].
    The slice is valid only during the call — the arena may grow on the
    next [add]. *)

val count_matches : t -> Tuple.t -> int

val length : t -> int
(** Total number of indexed tuples. *)

val distinct_keys : t -> int
