module Vec = Dcd_util.Vec

type t = { workers : int }

let create ~workers =
  if workers < 1 then invalid_arg "Partition.create";
  { workers }

let workers t = t.workers

(* The partition hash is Tuple's: an FNV-1a fold over the key columns
   finished with the splitmix64 avalanche.  The previous scheme (one
   golden-ratio multiply, take high bits) has no avalanche — structured
   key streams (sequential vertex ids, strided ids from generators)
   alias onto few residues once reduced mod [workers], which is exactly
   the skew the discriminating hash exists to prevent.  Going through
   [Tuple.hash_int]/[Tuple.hash_cols] also makes partition placement
   consistent with every other hash in the storage layer. *)
let of_key t k = Tuple.hash_int k mod t.workers

let of_tuple t ~cols tup = Tuple.hash_cols tup ~base:0 cols mod t.workers

let split t batch ~cols =
  let parts = Array.init t.workers (fun _ -> Vec.create ()) in
  Vec.iter (fun tup -> Vec.push parts.(of_tuple t ~cols tup) tup) batch;
  parts
