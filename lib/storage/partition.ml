module Vec = Dcd_util.Vec

type t = { workers : int }

let create ~workers =
  if workers < 1 then invalid_arg "Partition.create";
  { workers }

let workers t = t.workers

let mix k =
  (* Fibonacci hashing: golden-ratio multiply, take high bits. *)
  let h = k * 0x1E3779B97F4A7C15 in
  (h lsr 17) land max_int

let of_key t k = mix k mod t.workers

(* Top-level tail recursion: this runs once per emitted tuple, so no
   ref cell or closure may be allocated. *)
let rec fold_cols (tup : int array) (cols : int array) i n h =
  if i = n then h else fold_cols tup cols (i + 1) n (mix (h lxor tup.(Array.unsafe_get cols i)))

let of_tuple t ~cols tup = fold_cols tup cols 0 (Array.length cols) 0 mod t.workers

let split t batch ~cols =
  let parts = Array.init t.workers (fun _ -> Vec.create ()) in
  Vec.iter (fun tup -> Vec.push parts.(of_tuple t ~cols tup) tup) batch;
  parts
