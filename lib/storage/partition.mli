(** The discriminating hash function [H] (paper §2.2, Algorithm 1).

    Splits the key domain into [workers] partitions.  Records of both
    base and recursive tables are allocated to partitions by the hash of
    their join-key value, so the same key always lands on the same
    worker regardless of which relation it appears in. *)

type t

val create : workers:int -> t

val workers : t -> int

val of_key : t -> int -> int
(** [of_key h k] is the owning worker of key value [k], in
    [0 .. workers-1].  Uses {!Tuple.hash_int} (FNV fold + 64-bit
    avalanche finalizer), so sequential and strided key streams spread
    evenly over the workers and a single-column key places identically
    to {!of_tuple} on that column. *)

val of_tuple : t -> cols:int array -> Tuple.t -> int
(** Owner of a tuple according to its key columns (the multi-column key
    is mixed into a single hash). *)

val split : t -> Tuple.t Dcd_util.Vec.t -> cols:int array -> Tuple.t Dcd_util.Vec.t array
(** Partitions a batch of tuples by owner. *)
