module Vec = Dcd_util.Vec

type t = {
  name : string;
  arity : int;
  tuples : Tuple_set.t;
  mutable indexes : (int array * Hash_index.t) list;
}

let create ?(size_hint = 16) ~name ~arity () =
  if arity < 0 then invalid_arg "Relation.create";
  { name; arity; tuples = Tuple_set.create ~capacity:size_hint (); indexes = [] }

let name t = t.name

let arity t = t.arity

let length t = Tuple_set.length t.tuples

let add t tup =
  if Array.length tup <> t.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch on %s (got %d, want %d)" t.name
         (Array.length tup) t.arity);
  let fresh = Tuple_set.add t.tuples tup in
  if fresh then List.iter (fun (_, idx) -> Hash_index.add idx tup) t.indexes;
  fresh

let add_slice t data off =
  let fresh = Tuple_set.add_slice t.tuples data off t.arity in
  if fresh then
    List.iter (fun (_, idx) -> Hash_index.add_slice idx data off ~arity:t.arity) t.indexes;
  fresh

let mem t tup = Tuple_set.mem t.tuples tup

let mem_slice t data off = Tuple_set.mem_slice t.tuples data off t.arity

let iter f t = Tuple_set.iter f t.tuples

let iter_slices t f = Tuple_set.iter_slices t.tuples (fun data off _len -> f data off)

let to_vec t = Tuple_set.to_vec t.tuples

let find_index t ~key_cols =
  List.find_map (fun (cols, idx) -> if cols = key_cols then Some idx else None) t.indexes

let ensure_index t ~key_cols =
  match find_index t ~key_cols with
  | Some idx -> idx
  | None ->
    let idx = Hash_index.create ~size_hint:(length t) ~key_cols () in
    Tuple_set.iter_slices t.tuples (fun data off len ->
        Hash_index.add_slice idx data off ~arity:len);
    t.indexes <- (key_cols, idx) :: t.indexes;
    idx

let indexes t = t.indexes
