module Vec = Dcd_util.Vec
module Bptree = Dcd_btree.Bptree

(* A sorted index stores each tuple re-ordered by [si_cols] (a full
   permutation of the columns) as a composite B⁺-tree key, giving the
   generic-join path trie iteration in that column order.  [si_scratch]
   is the permutation buffer — [Bptree] copies keys defensively. *)
type sorted_index = {
  si_cols : int array;
  si_tree : unit Bptree.t;
  si_scratch : int array;
}

type t = {
  name : string;
  arity : int;
  tuples : Tuple_set.t;
  mutable indexes : (int array * Hash_index.t) list;
  mutable sorted : sorted_index list;
}

let create ?(size_hint = 16) ~name ~arity () =
  if arity < 0 then invalid_arg "Relation.create";
  { name; arity; tuples = Tuple_set.create ~capacity:size_hint (); indexes = []; sorted = [] }

let name t = t.name

let arity t = t.arity

let length t = Tuple_set.length t.tuples

let add t tup =
  if Array.length tup <> t.arity then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch on %s (got %d, want %d)" t.name
         (Array.length tup) t.arity);
  let fresh = Tuple_set.add t.tuples tup in
  if fresh then begin
    List.iter (fun (_, idx) -> Hash_index.add idx tup) t.indexes;
    List.iter
      (fun si ->
        for i = 0 to Array.length si.si_cols - 1 do
          si.si_scratch.(i) <- tup.(si.si_cols.(i))
        done;
        ignore (Bptree.add_if_absent si.si_tree si.si_scratch ()))
      t.sorted
  end;
  fresh

let add_slice t data off =
  let fresh = Tuple_set.add_slice t.tuples data off t.arity in
  if fresh then begin
    List.iter (fun (_, idx) -> Hash_index.add_slice idx data off ~arity:t.arity) t.indexes;
    List.iter
      (fun si ->
        for i = 0 to Array.length si.si_cols - 1 do
          si.si_scratch.(i) <- data.(off + si.si_cols.(i))
        done;
        ignore (Bptree.add_if_absent si.si_tree si.si_scratch ()))
      t.sorted
  end;
  fresh

(* Bulk add: fold a whole batch into the tuple set first, then refresh
   every sorted trie index from the fresh subset as one sorted run — a
   full column permutation keeps distinct tuples distinct, so the sorted
   keys are strictly increasing and the B⁺-tree takes them in one
   co-sequential merge instead of one descent per tuple. *)
let add_batch t batch =
  let fresh = Vec.create ~capacity:(Vec.length batch) () in
  Vec.iter
    (fun tup ->
      if Array.length tup <> t.arity then
        invalid_arg
          (Printf.sprintf "Relation.add_batch: arity mismatch on %s (got %d, want %d)" t.name
             (Array.length tup) t.arity);
      if Tuple_set.add t.tuples tup then begin
        List.iter (fun (_, idx) -> Hash_index.add idx tup) t.indexes;
        Vec.push fresh tup
      end)
    batch;
  let n = Vec.length fresh in
  if n > 0 then
    List.iter
      (fun si ->
        let keys =
          Array.init n (fun i ->
              let tup = Vec.get fresh i in
              Array.map (fun c -> tup.(c)) si.si_cols)
        in
        Array.sort Bptree.compare_key keys;
        Bptree.merge_sorted_slice si.si_tree ~n
          ~key:(fun i -> keys.(i))
          ~merge:(fun _ -> function Some () -> None | None -> Some ()))
      t.sorted;
  n

let mem t tup = Tuple_set.mem t.tuples tup

let mem_slice t data off = Tuple_set.mem_slice t.tuples data off t.arity

let iter f t = Tuple_set.iter f t.tuples

let iter_slices t f = Tuple_set.iter_slices t.tuples (fun data off _len -> f data off)

let to_vec t = Tuple_set.to_vec t.tuples

let find_index t ~key_cols =
  List.find_map (fun (cols, idx) -> if cols = key_cols then Some idx else None) t.indexes

let ensure_index t ~key_cols =
  match find_index t ~key_cols with
  | Some idx -> idx
  | None ->
    let idx = Hash_index.create ~size_hint:(length t) ~key_cols () in
    Tuple_set.iter_slices t.tuples (fun data off len ->
        Hash_index.add_slice idx data off ~arity:len);
    t.indexes <- (key_cols, idx) :: t.indexes;
    idx

let indexes t = t.indexes

let find_sorted_index t ~cols =
  List.find_map (fun si -> if si.si_cols = cols then Some si.si_tree else None) t.sorted

(* Prefix scan for the serving read path: through the identity-order
   sorted trie when one has been built (one seek + a leaf walk), else a
   filtered full scan.  Sessions pre-build the trie on served
   relations, so the fallback only covers ad-hoc reads. *)
let iter_prefix t ~prefix f =
  let k = Array.length prefix in
  if k > t.arity then invalid_arg "Relation.iter_prefix: prefix longer than arity";
  if k = 0 then iter f t
  else begin
    let identity = Array.init t.arity (fun i -> i) in
    match find_sorted_index t ~cols:identity with
    | Some tree -> Bptree.iter_prefix tree ~prefix (fun key () -> f key)
    | None ->
      iter
        (fun tup ->
          let ok = ref true in
          for i = 0 to k - 1 do
            if tup.(i) <> prefix.(i) then ok := false
          done;
          if !ok then f tup)
        t
  end

let ensure_sorted_index t ~cols =
  if Array.length cols <> t.arity then invalid_arg "Relation.ensure_sorted_index";
  match find_sorted_index t ~cols with
  | Some tree -> tree
  | None ->
    (* bulk path: permute every stored tuple, sort once, load at high
       fill with [of_sorted] — distinct tuples stay distinct under a
       full column permutation, so keys are strictly increasing *)
    let n = length t in
    let keys = Array.make n [||] in
    let i = ref 0 in
    Tuple_set.iter_slices t.tuples (fun data off _len ->
        let k = Array.make t.arity 0 in
        for j = 0 to t.arity - 1 do
          k.(j) <- data.(off + cols.(j))
        done;
        keys.(!i) <- k;
        incr i);
    Array.sort Bptree.compare_key keys;
    let entries = Array.map (fun k -> (k, ())) keys in
    let tree = Bptree.of_sorted entries in
    t.sorted <- { si_cols = Array.copy cols; si_tree = tree; si_scratch = Array.make t.arity 0 } :: t.sorted;
    tree
