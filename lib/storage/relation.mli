(** A stored relation (one partition's worth, or a whole EDB table).

    Combines the deduplicating {!Tuple_set} with any number of hash
    indexes that are maintained incrementally on insert.  Base relations
    are loaded once and indexed on the join keys the planner requests;
    recursive relations additionally keep a B⁺-tree (owned by the engine
    layer, see {!Dcd_engine}).  Both the set and the indexes live in
    flat storage — the [_slice]/[_slices] entry points move tuples
    between flat buffers without boxing. *)

type t

val create : ?size_hint:int -> name:string -> arity:int -> unit -> t
(** [size_hint] (expected tuple count) pre-sizes the dedup table. *)

val name : t -> string

val arity : t -> int

val length : t -> int

val add : t -> Tuple.t -> bool
(** Inserts; [true] iff new.  Indexes are updated only for new tuples.
    @raise Invalid_argument on arity mismatch. *)

val add_slice : t -> int array -> int -> bool
(** [add_slice t data off] inserts the tuple stored flat at
    [data.(off .. off+arity-1)] without boxing it; [true] iff new. *)

val add_batch : t -> Tuple.t Dcd_util.Vec.t -> int
(** Bulk {!add}: folds the whole batch into the tuple set and hash
    indexes, then refreshes every sorted trie index from the fresh
    subset as {e one} sorted run merged co-sequentially into the tree
    ({!Dcd_btree.Bptree.merge_sorted_slice}) — one descent per leaf
    segment instead of one per tuple.  Returns the number of new
    tuples.  Tuples are retained (not copied); same result as repeated
    {!add}.
    @raise Invalid_argument on arity mismatch. *)

val mem : t -> Tuple.t -> bool

val mem_slice : t -> int array -> int -> bool

val iter : (Tuple.t -> unit) -> t -> unit

val iter_slices : t -> (int array -> int -> unit) -> unit
(** [iter_slices t f] calls [f data off] per stored tuple in insertion
    order; the slice is valid only during the call. *)

val to_vec : t -> Tuple.t Dcd_util.Vec.t

val ensure_index : t -> key_cols:int array -> Hash_index.t
(** Returns the hash index on [key_cols], building it from the current
    contents on first request (pre-sized to the relation's length).
    Indexes are identified by their exact column list. *)

val find_index : t -> key_cols:int array -> Hash_index.t option

val indexes : t -> (int array * Hash_index.t) list

val ensure_sorted_index : t -> cols:int array -> unit Dcd_btree.Bptree.t
(** Returns the B⁺-tree over tuples re-ordered by [cols] (a permutation
    of all columns), building it by bulk load on first request and
    maintaining it incrementally on later inserts.  This is the trie the
    generic-join path leapfrogs over: seeking a key prefix enumerates
    the distinct continuations in [cols] order.
    @raise Invalid_argument if [cols] is not of full arity. *)

val find_sorted_index : t -> cols:int array -> unit Dcd_btree.Bptree.t option

val iter_prefix : t -> prefix:Tuple.t -> (Tuple.t -> unit) -> unit
(** [iter_prefix t ~prefix f] calls [f] on every tuple whose first
    [Array.length prefix] columns equal [prefix].  Runs off the
    identity-order sorted index when one exists (ascending order, one
    tree seek); falls back to a filtered scan (insertion order)
    otherwise.  An empty prefix iterates everything.
    @raise Invalid_argument if the prefix is longer than the arity. *)
