(* A per-store scratch run for the batch-sorted merge path: candidate
   records staged flat during a drain, then sorted by their permuted key
   columns and walked in key order.

   Record layout in [pool], at tuple offset [off]:
     field_0 .. field_{arity-1}                      (canonical order)
   followed, when [contrib] is true, by
     clen; c_0 .. c_{clen-1}                         (contributor key)

   Sorting permutes an index array over the staged records — the pool is
   never moved — comparing the key columns read straight out of the
   pool.  The sort is stable (ties keep staging order), which is what
   keeps last-contribution-wins Sum semantics identical to the per-tuple
   merge path.  An LSD counting-radix pass per key column is used when
   the key is narrow (<= 3 columns) and every column's value range is
   small enough that the count array stays O(n); anything else falls
   back to a comparison merge sort with the staging index as the final
   tie-break. *)

type t = {
  arity : int;
  contrib : bool;
  key_cols : int array; (* canonical column ids, in key (permuted) order *)
  mutable pool : int array;
  mutable used : int;
  mutable offs : int array; (* tuple offset per staged record *)
  mutable n : int;
  mutable order : int array; (* sorted permutation of [0, n); valid after [sort] *)
  mutable scratch : int array; (* radix/merge double buffer *)
}

let create ~arity ~contrib ~key_cols () =
  if arity < 0 then invalid_arg "Run_buffer.create";
  {
    arity;
    contrib;
    key_cols;
    pool = Array.make (max 64 (arity * 16)) 0;
    used = 0;
    offs = Array.make 64 0;
    n = 0;
    order = [||];
    scratch = [||];
  }

let length t = t.n

let is_empty t = t.n = 0

let data t = t.pool

let clear t =
  t.used <- 0;
  t.n <- 0

let ensure_pool t extra =
  if t.used + extra > Array.length t.pool then begin
    let cap = max (t.used + extra) (Array.length t.pool * 2) in
    let pool' = Array.make cap 0 in
    Array.blit t.pool 0 pool' 0 t.used;
    t.pool <- pool'
  end

let ensure_offs t =
  if t.n = Array.length t.offs then begin
    let offs' = Array.make (Array.length t.offs * 2) 0 in
    Array.blit t.offs 0 offs' 0 t.n;
    t.offs <- offs'
  end

let stage_slice t ~data ~off ~cdata ~coff ~clen =
  if (not t.contrib) && clen > 0 then invalid_arg "Run_buffer.stage_slice: unexpected contributor";
  ensure_pool t (t.arity + if t.contrib then 1 + clen else 0);
  ensure_offs t;
  let dst = t.used in
  Array.blit data off t.pool dst t.arity;
  t.used <- t.used + t.arity;
  if t.contrib then begin
    t.pool.(t.used) <- clen;
    Array.blit cdata coff t.pool (t.used + 1) clen;
    t.used <- t.used + 1 + clen
  end;
  t.offs.(t.n) <- dst;
  t.n <- t.n + 1

(* --- accessors over sorted ranks (valid after [sort]) --- *)

let off t rank = t.offs.(t.order.(rank))

let clen t rank = if t.contrib then t.pool.(t.offs.(t.order.(rank)) + t.arity) else 0

let coff t rank = t.offs.(t.order.(rank)) + t.arity + 1

(* key equality of two sorted ranks, by key columns *)
let equal_keys t r1 r2 =
  let o1 = t.offs.(t.order.(r1)) and o2 = t.offs.(t.order.(r2)) in
  let cols = t.key_cols in
  let rec loop i =
    i = Array.length cols
    ||
    let c = Array.unsafe_get cols i in
    Array.unsafe_get t.pool (o1 + c) = Array.unsafe_get t.pool (o2 + c) && loop (i + 1)
  in
  loop 0

(* materializes the permuted key of a sorted rank into a fresh array
   (the shape the B⁺-tree adopts on insert) *)
let key t rank =
  let o = t.offs.(t.order.(rank)) in
  let cols = t.key_cols in
  Array.map (fun c -> t.pool.(o + c)) cols

(* --- sorting --- *)

(* Comparison path: merge sort over the index array, comparing key
   columns from the pool with the staging index as tie-break (stable by
   construction, and [Array.sort] would not be). *)
let compare_records t i j =
  let oi = t.offs.(i) and oj = t.offs.(j) in
  let cols = t.key_cols in
  let rec loop c =
    if c = Array.length cols then Int.compare i j
    else
      let col = Array.unsafe_get cols c in
      let d =
        Int.compare (Array.unsafe_get t.pool (oi + col)) (Array.unsafe_get t.pool (oj + col))
      in
      if d <> 0 then d else loop (c + 1)
  in
  loop 0

(* Counting sort of [src] into [dst] by one key column, stable. *)
let counting_pass t src dst ~col ~base ~range =
  let n = t.n in
  let counts = Array.make range 0 in
  for i = 0 to n - 1 do
    let v = t.pool.(t.offs.(src.(i)) + col) - base in
    counts.(v) <- counts.(v) + 1
  done;
  let acc = ref 0 in
  for v = 0 to range - 1 do
    let c = counts.(v) in
    counts.(v) <- !acc;
    acc := !acc + c
  done;
  for i = 0 to n - 1 do
    let v = t.pool.(t.offs.(src.(i)) + col) - base in
    dst.(counts.(v)) <- src.(i);
    counts.(v) <- counts.(v) + 1
  done

let sort t =
  let n = t.n in
  if Array.length t.order < n then begin
    t.order <- Array.make (max n (Array.length t.order * 2)) 0;
    t.scratch <- Array.make (Array.length t.order) 0
  end;
  let order = t.order in
  for i = 0 to n - 1 do
    order.(i) <- i
  done;
  let klen = Array.length t.key_cols in
  if n <= 1 || klen = 0 then ()
  else begin
    (* radix eligibility: narrow key, every column's range O(n) *)
    let radix_ok = ref (klen <= 3 && n >= 64) in
    let bases = Array.make klen 0 in
    let ranges = Array.make klen 0 in
    let max_range = max 1024 (4 * n) in
    if !radix_ok then begin
      for c = 0 to klen - 1 do
        let col = t.key_cols.(c) in
        let mn = ref max_int and mx = ref min_int in
        for i = 0 to n - 1 do
          let v = t.pool.(t.offs.(i) + col) in
          if v < !mn then mn := v;
          if v > !mx then mx := v
        done;
        bases.(c) <- !mn;
        let r = !mx - !mn + 1 in
        ranges.(c) <- r;
        if r > max_range || r < 1 then radix_ok := false
      done
    end;
    if !radix_ok then begin
      (* LSD: least-significant key column first, each pass stable *)
      let src = ref order and dst = ref t.scratch in
      for c = klen - 1 downto 0 do
        counting_pass t !src !dst ~col:t.key_cols.(c) ~base:bases.(c) ~range:ranges.(c);
        let tmp = !src in
        src := !dst;
        dst := tmp
      done;
      if !src != order then Array.blit !src 0 order 0 n
    end
    else begin
      (* stable merge sort on the index array *)
      let a = order and b = t.scratch in
      Array.blit a 0 b 0 n;
      let rec msort src dst lo hi =
        if hi - lo > 1 then begin
          let mid = (lo + hi) / 2 in
          msort dst src lo mid;
          msort dst src mid hi;
          let i = ref lo and j = ref mid in
          for k = lo to hi - 1 do
            if !i < mid && (!j >= hi || compare_records t src.(!i) src.(!j) <= 0) then begin
              dst.(k) <- src.(!i);
              incr i
            end
            else begin
              dst.(k) <- src.(!j);
              incr j
            end
          done
        end
      in
      msort b a 0 n
    end
  end
