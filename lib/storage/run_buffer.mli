(** Per-store scratch run for the batch-sorted merge path.

    A worker's drain stages every surviving candidate record — canonical
    tuple fields plus an optional contributor key — flat into this pool,
    then {!sort} orders an index permutation by the store's permuted key
    columns and the merge layer walks the records in key order
    ({!Dcd_btree.Bptree.merge_sorted_slice} gets one strictly-increasing
    run instead of one descent per tuple).

    The sort is {e stable} (ties keep staging order), so
    last-contribution-wins aggregate semantics match the per-tuple merge
    path exactly.  Narrow keys (≤ 3 columns) with O(n) per-column value
    ranges take an LSD counting-radix path; everything else a stable
    comparison merge sort.  The pool and index arrays persist across
    {!clear}, so steady-state iterations allocate nothing but the
    materialized keys of retained candidates. *)

type t

val create : arity:int -> contrib:bool -> key_cols:int array -> unit -> t
(** [key_cols] are canonical column ids in permuted (route-first) key
    order — the order {!key} materializes and {!sort} compares. *)

val length : t -> int
(** Records currently staged. *)

val is_empty : t -> bool

val stage_slice :
  t -> data:int array -> off:int -> cdata:int array -> coff:int -> clen:int -> unit
(** Appends one record: tuple [data.(off .. off+arity-1)], contributor
    [cdata.(coff .. coff+clen-1)] ([clen = 0] for none; only legal on a
    [contrib] buffer).  Both are copied into the pool. *)

val sort : t -> unit
(** Orders the staged records by permuted key (stable on ties).  The
    rank accessors below are valid until the next {!stage_slice} or
    {!clear}. *)

val data : t -> int array
(** The flat pool; read records through {!off}/{!clen}/{!coff}. *)

val off : t -> int -> int
(** Tuple offset in {!data} of the record at sorted rank [i]. *)

val clen : t -> int -> int
(** Contributor length of the record at sorted rank [i] (0 for none). *)

val coff : t -> int -> int
(** Contributor offset in {!data} of the record at sorted rank [i]
    (meaningless when [clen] is 0). *)

val equal_keys : t -> int -> int -> bool
(** Whether two sorted ranks carry the same permuted key. *)

val key : t -> int -> int array
(** Materializes the permuted key of sorted rank [i] into a fresh array
    — safe to hand to [Bptree.merge_sorted_slice] for adoption. *)

val clear : t -> unit
(** Drops all staged records, keeping the buffers. *)
