type 'a t = (int * 'a) Atomic.t

let create v = Atomic.make (0, v)

let read t = Atomic.get t

let version t = fst (Atomic.get t)

let value t = snd (Atomic.get t)

let publish t v =
  (* single-writer: the serving session holds the update mutex, so a
     plain read-increment-set is race-free and readers never retry *)
  let ver, _ = Atomic.get t in
  let ver' = ver + 1 in
  Atomic.set t (ver', v);
  ver'
