(** A version-stamped published value: the snapshot cell under the
    serving session's read path.

    The writer prepares a complete immutable state off to the side
    (copy-on-write — published relations are never mutated again) and
    {!publish}es it with one atomic store; readers {!read} the
    (version, state) pair with one atomic load and then work off their
    pair without further coordination.  Reads are wait-free and never
    observe a torn state: every response is attributable to exactly one
    published version — the consistency contract the concurrency suite
    checks.

    Single writer (enforced by the session's update mutex), any number
    of readers, any domain or thread. *)

type 'a t

val create : 'a -> 'a t
(** Version 0 holds the initial value. *)

val read : 'a t -> int * 'a
(** The current (version, value) pair, atomically. *)

val version : 'a t -> int

val value : 'a t -> 'a

val publish : 'a t -> 'a -> int
(** Replaces the value, bumps the version, returns the new version.
    Must only be called by the single writer. *)
