type t = int array

(* Top-level recursion throughout this file: a local [let rec] closure
   captures its environment and is heap-allocated on every call by the
   non-flambda compiler — measurably so, since these run once per probe
   on the join path.  A fully-applied top-level function compiles to a
   direct jump and allocates nothing. *)
let rec eq_range (d1 : int array) o1 (d2 : int array) o2 n =
  n = 0
  || (Array.unsafe_get d1 o1 = Array.unsafe_get d2 o2 && eq_range d1 (o1 + 1) d2 (o2 + 1) (n - 1))

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b && eq_range a 0 b 0 la

let equal_slice (a : t) (data : int array) off len = Array.length a = len && eq_range a 0 data off len

let equal_slices (d1 : int array) o1 (d2 : int array) o2 len = eq_range d1 o1 d2 o2 len

(* splitmix64 finalizer: full-width avalanche, so every input bit —
   including the low bits of small interned ids, where all the entropy
   lives — affects the whole hash word.  (The previous scheme folded
   [x lsr 32] as a second FNV step, which contributes nothing for the
   small ids the interner produces and left the high hash bits weak.)
   The multipliers are the splitmix64 constants truncated to OCaml's
   63-bit native int; products mod 2^63 depend only on the multiplier
   mod 2^63, so the truncation changes nothing about the arithmetic. *)
let mix64 x =
  let x = (x lxor (x lsr 30)) * 0x3f58476d1ce4e5b9 in
  let x = (x lxor (x lsr 27)) * 0x14d049bb133111eb in
  x lxor (x lsr 31)

let fnv_prime = 0x100000001b3

let fnv_seed = 0x3bf29ce484222325

(* One value folded into the running state.  Every hash in the storage
   layer (boxed tuples, arena slices, projected key columns) goes
   through this same step so the representations collide exactly when
   the value sequences do.  The per-field step is a single multiply;
   the avalanche lives entirely in the finalizer, keeping the cost on
   the probe-heavy join path at one imul per field. *)
let[@inline] hash_step h x = (h lxor x) * fnv_prime

let[@inline] hash_finish h = mix64 h land max_int

let hash_slice (data : int array) ~off ~len =
  let h = ref fnv_seed in
  for i = off to off + len - 1 do
    h := hash_step !h (Array.unsafe_get data i)
  done;
  hash_finish !h

let hash (a : t) = hash_slice a ~off:0 ~len:(Array.length a)

let hash_int x = hash_finish (hash_step fnv_seed x)

let hash_cols (data : int array) ~base (cols : int array) =
  let h = ref fnv_seed in
  for i = 0 to Array.length cols - 1 do
    h := hash_step !h (Array.unsafe_get data (base + Array.unsafe_get cols i))
  done;
  hash_finish !h

let compare = Dcd_btree.Bptree.compare_key

let project (tup : t) cols = Array.map (fun c -> tup.(c)) cols

let group_sentinel = min_int

let group_key (tup : t) ~agg_pos =
  let g = Array.copy tup in
  g.(agg_pos) <- group_sentinel;
  g

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri (fun i x -> if i > 0 then Format.fprintf fmt ", %d" x else Format.fprintf fmt "%d" x) t;
  Format.fprintf fmt ")"

let to_string t = Format.asprintf "%a" pp t
