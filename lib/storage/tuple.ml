type t = int array

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec loop i = i = la || (Array.unsafe_get a i = Array.unsafe_get b i && loop (i + 1)) in
  loop 0

let hash (a : t) =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Array.length a - 1 do
    let x = Array.unsafe_get a i in
    (* fold each int as 8 bytes' worth in two 32-bit halves *)
    h := (!h lxor (x land 0xffffffff)) * 0x100000001b3;
    h := (!h lxor (x lsr 32)) * 0x100000001b3
  done;
  !h land max_int

let compare = Dcd_btree.Bptree.compare_key

let project (tup : t) cols = Array.map (fun c -> tup.(c)) cols

let group_sentinel = min_int

let group_key (tup : t) ~agg_pos =
  let g = Array.copy tup in
  g.(agg_pos) <- group_sentinel;
  g

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri (fun i x -> if i > 0 then Format.fprintf fmt ", %d" x else Format.fprintf fmt "%d" x) t;
  Format.fprintf fmt ")"

let to_string t = Format.asprintf "%a" pp t
