(** Tuples.

    Every engine tuple is an [int array]; string constants are interned
    through {!Dcd_util.Symbol} by the front end and fractional values are
    carried as fixed-point integers by the programs that need them
    (e.g. PageRank).  This keeps the hot paths free of boxing and
    polymorphic comparison.

    The hot read path additionally manipulates tuples as *slices* of a
    flat backing buffer ([int array] + offset, see {!Arena}); the
    [_slice]/[_cols] entry points below hash and compare those without
    materializing a boxed tuple, and agree exactly with the boxed
    versions on the same value sequence. *)

type t = int array

val equal : t -> t -> bool

val equal_slice : t -> int array -> int -> int -> bool
(** [equal_slice a data off len] is [equal a (Array.sub data off len)]
    without the allocation. *)

val equal_slices : int array -> int -> int array -> int -> int -> bool
(** [equal_slices d1 o1 d2 o2 len] compares two flat slices of length
    [len]. *)

val mix64 : int -> int
(** The splitmix64 finalizer used by {!hash}: a full-width avalanche
    permutation of the native int.  Exposed for hash-quality tests. *)

val hash : t -> int
(** FNV-1a over the splitmix64-mixed elements, with a final avalanche;
    suitable for the open-addressing tables in this library.  Equal
    value sequences hash equally across {!hash}, {!hash_slice} and
    {!hash_cols}. *)

val hash_int : int -> int
(** Hash of the single-field tuple [[| x |]] — equal to
    [hash [| x |]] without the allocation.  The partitioner hashes
    single-column keys through this so a key value lands on the same
    worker whether it is hashed boxed, flat, or bare. *)

val hash_slice : int array -> off:int -> len:int -> int
(** Hash of the tuple stored flat at [data.(off .. off+len-1)]. *)

val hash_cols : int array -> base:int -> int array -> int
(** [hash_cols data ~base cols] hashes the projected key
    [data.(base+cols.(0)), data.(base+cols.(1)), ...] — the key of the
    tuple at flat offset [base] — without materializing it. *)

val compare : t -> t -> int
(** Lexicographic; same order as {!Dcd_btree.Bptree.compare_key}. *)

val project : t -> int array -> t
(** [project tup cols] is the sub-tuple of the listed column positions,
    in the listed order. *)

val group_sentinel : int
(** The value standing in for the aggregate position of a group key
    ([min_int]). *)

val group_key : t -> agg_pos:int -> t
(** [group_key tup ~agg_pos] is [tup] with the aggregate value position
    masked by {!group_sentinel}: the key under which aggregate
    candidates for the same group collide.  Every site that groups
    aggregate tuples (Gather delta dedup, Distribute partial
    aggregation) must build keys with this one helper so the sentinels
    agree. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(a, b, c)]. *)

val to_string : t -> string
