(** Tuples.

    Every engine tuple is an [int array]; string constants are interned
    through {!Dcd_util.Symbol} by the front end and fractional values are
    carried as fixed-point integers by the programs that need them
    (e.g. PageRank).  This keeps the hot paths free of boxing and
    polymorphic comparison. *)

type t = int array

val equal : t -> t -> bool

val hash : t -> int
(** FNV-1a over the elements; suitable for the open-addressing tables in
    this library. *)

val compare : t -> t -> int
(** Lexicographic; same order as {!Dcd_btree.Bptree.compare_key}. *)

val project : t -> int array -> t
(** [project tup cols] is the sub-tuple of the listed column positions,
    in the listed order. *)

val group_sentinel : int
(** The value standing in for the aggregate position of a group key
    ([min_int]). *)

val group_key : t -> agg_pos:int -> t
(** [group_key tup ~agg_pos] is [tup] with the aggregate value position
    masked by {!group_sentinel}: the key under which aggregate
    candidates for the same group collide.  Every site that groups
    aggregate tuples (Gather delta dedup, Distribute partial
    aggregation) must build keys with this one helper so the sentinels
    agree. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(a, b, c)]. *)

val to_string : t -> string
