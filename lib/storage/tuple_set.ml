module Vec = Dcd_util.Vec

(* Flat storage: every stored tuple lives in [data] as
   [len; field_0; ...; field_{len-1}], appended in insertion order.  The
   probe table maps hash slots to flat offsets (+1, 0 = empty), so the
   set holds no per-tuple heap object — dedup probes hash and compare
   straight out of the flat buffer, and iteration is a sequential walk
   of [data].  Mixed arities are legal (the aggregate tables key
   [group ++ contributor] tuples whose width differs from the group's).

   Deletion is deliberately unsupported — Datalog relations only grow
   during bottom-up evaluation — which is what makes the append-only
   flat layout sufficient. *)

type t = {
  mutable table : int array; (* flat offset + 1; 0 = empty *)
  mutable mask : int;
  mutable size : int;
  mutable data : int array;
  mutable used : int; (* ints consumed in [data] *)
}

let initial = 16

let create ?(capacity = initial) () =
  let rec pow2 p n = if p >= n then p else pow2 (p * 2) n in
  let cap = pow2 initial capacity in
  { table = Array.make cap 0; mask = cap - 1; size = 0; data = Array.make (cap * 3) 0; used = 0 }

let length t = t.size

(* probe for the tuple stored flat at [src.(off .. off+len-1)]; returns
   the table index where it lives or where it would be inserted *)
let probe t h (src : int array) off len =
  (* while + non-escaping refs: the refs stay in registers, and no
     closure is allocated per probe (a local [let rec] would be) *)
  let table = t.table and mask = t.mask and data = t.data in
  let i = ref (h land mask) in
  let found = ref (-1) in
  while !found < 0 do
    let e = Array.unsafe_get table !i in
    if e = 0 then found := !i
    else begin
      let stored = e - 1 in
      if Array.unsafe_get data stored = len && Tuple.equal_slices data (stored + 1) src off len
      then found := !i
      else i := (!i + 1) land mask
    end
  done;
  !found

let grow_table t =
  let cap = (t.mask + 1) * 2 in
  let table' = Array.make cap 0 in
  let mask' = cap - 1 in
  let data = t.data in
  Array.iter
    (fun e ->
      if e <> 0 then begin
        let stored = e - 1 in
        let len = data.(stored) in
        let h = Tuple.hash_slice data ~off:(stored + 1) ~len in
        let i = ref (h land mask') in
        while table'.(!i) <> 0 do
          i := (!i + 1) land mask'
        done;
        table'.(!i) <- e
      end)
    t.table;
  t.table <- table';
  t.mask <- mask'

let ensure_data t extra =
  if t.used + extra > Array.length t.data then begin
    let cap = max (t.used + extra) (max 16 (Array.length t.data * 2)) in
    let data' = Array.make cap 0 in
    Array.blit t.data 0 data' 0 t.used;
    t.data <- data'
  end

let store t (src : int array) off len =
  ensure_data t (len + 1);
  let at = t.used in
  t.data.(at) <- len;
  Array.blit src off t.data (at + 1) len;
  t.used <- at + len + 1;
  at

let add_slice t (src : int array) off len =
  if t.size * 4 >= (t.mask + 1) * 3 then grow_table t;
  let h = Tuple.hash_slice src ~off ~len in
  let i = probe t h src off len in
  if t.table.(i) <> 0 then false
  else begin
    let at = store t src off len in
    t.table.(i) <- at + 1;
    t.size <- t.size + 1;
    true
  end

let add t (tup : Tuple.t) = add_slice t tup 0 (Array.length tup)

let mem_slice t (src : int array) off len =
  let h = Tuple.hash_slice src ~off ~len in
  t.table.(probe t h src off len) <> 0

let mem t (tup : Tuple.t) = mem_slice t tup 0 (Array.length tup)

let iter_slices t f =
  let data = t.data in
  let off = ref 0 in
  while !off < t.used do
    let len = data.(!off) in
    f data (!off + 1) len;
    off := !off + len + 1
  done

let iter f t = iter_slices t (fun data off len -> f (Array.sub data off len))

let fold f acc t =
  let acc = ref acc in
  iter (fun tup -> acc := f !acc tup) t;
  !acc

let to_vec t =
  let v = Vec.create ~capacity:t.size () in
  iter (fun tup -> Vec.push v tup) t;
  v

let clear t =
  Array.fill t.table 0 (t.mask + 1) 0;
  t.size <- 0;
  t.used <- 0

let load_factor t = float_of_int t.size /. float_of_int (t.mask + 1)
