(** Deduplicating tuple store over flat storage.

    An open-addressing hash set with linear probing whose elements live
    length-prefixed in one growable flat [int array] — no per-tuple heap
    object.  This is the backing store of every relation: semi-naive
    evaluation is all about set difference ("is this tuple new?"), so
    [add] reports whether the tuple was absent, and the [_slice] entry
    points let the caller probe straight from another flat buffer
    (arena, packed frame) without materializing a boxed tuple.
    Deletion is deliberately unsupported — Datalog relations only grow
    during bottom-up evaluation. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a tuple-count hint for the probe table. *)

val length : t -> int

val add : t -> Tuple.t -> bool
(** [add s tup] inserts a copy of [tup]; [true] iff it was not already
    present.  The input is copied into the flat store, so callers may
    reuse scratch buffers. *)

val add_slice : t -> int array -> int -> int -> bool
(** [add_slice s data off len] inserts the tuple stored flat at
    [data.(off .. off+len-1)]; [true] iff fresh. *)

val mem : t -> Tuple.t -> bool

val mem_slice : t -> int array -> int -> int -> bool

val iter : (Tuple.t -> unit) -> t -> unit
(** Boxed iteration (insertion order) — API edges only; the hot paths
    use {!iter_slices}. *)

val iter_slices : t -> (int array -> int -> int -> unit) -> unit
(** [iter_slices s f] calls [f data off len] for each stored tuple in
    insertion order; the slice is valid only during the call. *)

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val to_vec : t -> Tuple.t Dcd_util.Vec.t

val clear : t -> unit

val load_factor : t -> float
(** Diagnostics: occupancy of the probe table. *)
