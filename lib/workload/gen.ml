module Rng = Dcd_util.Rng

let rmat ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) ?(weights = 100) ~seed ~scale ~edges () =
  if scale < 1 || scale > 30 then invalid_arg "Gen.rmat: scale out of range";
  if a +. b +. c >= 1.0001 then invalid_arg "Gen.rmat: a + b + c must be < 1";
  let n = 1 lsl scale in
  let g = Graph.create ~n in
  let rng = Rng.create seed in
  let seen = Hashtbl.create (edges * 2) in
  let sample () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Rng.float rng 1.0 in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor du;
      v := (!v lsl 1) lor dv
    done;
    (!u, !v)
  in
  (* cap the retry budget so pathological parameters still terminate *)
  let attempts = ref 0 in
  let max_attempts = edges * 4 in
  while Graph.edge_count g < edges && !attempts < max_attempts do
    incr attempts;
    let u, v = sample () in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      Graph.add_edge g ~w:(1 + Rng.int rng weights) u v
    end
  done;
  g

let zipf ?(alpha = 1.2) ?(weights = 100) ~seed ~n ~edges () =
  if n < 2 then invalid_arg "Gen.zipf: n must be >= 2";
  if alpha <= 0. then invalid_arg "Gen.zipf: alpha must be > 0";
  let g = Graph.create ~n in
  let rng = Rng.create seed in
  (* CDF over the harmonic weights i^-alpha; a source vertex is drawn by
     binary search on a uniform variate, so low ranks absorb most of the
     out-degree mass — the per-partition skew the morsel board exists
     to flatten *)
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) alpha);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  let draw () =
    let r = Rng.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < r then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let seen = Hashtbl.create (edges * 2) in
  let attempts = ref 0 in
  let max_attempts = edges * 8 in
  while Graph.edge_count g < edges && !attempts < max_attempts do
    incr attempts;
    let u = draw () in
    let v = Rng.int rng n in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      Graph.add_edge g ~w:(1 + Rng.int rng weights) u v
    end
  done;
  g

let gnp ?(weights = 100) ~seed ~n ~p () =
  if p <= 0. || p >= 1. then invalid_arg "Gen.gnp: p must be in (0, 1)";
  let g = Graph.create ~n in
  let rng = Rng.create seed in
  let log1mp = log (1. -. p) in
  (* geometric skipping over the n*n adjacency cells *)
  let total = n * n in
  let pos = ref (-1) in
  let continue_ = ref true in
  while !continue_ do
    let r = Rng.float rng 1.0 in
    let skip = 1 + int_of_float (log (1. -. r) /. log1mp) in
    pos := !pos + skip;
    if !pos >= total then continue_ := false
    else begin
      let u = !pos / n and v = !pos mod n in
      if u <> v then Graph.add_edge g ~w:(1 + Rng.int rng weights) u v
    end
  done;
  g

let random_tree ~seed ~height ~min_deg ~max_deg () =
  if min_deg < 1 || max_deg < min_deg then invalid_arg "Gen.random_tree";
  let rng = Rng.create seed in
  let g = Graph.create ~n:0 in
  let next = ref 1 in
  let rec grow node level =
    if level < height then begin
      let deg = min_deg + Rng.int rng (max_deg - min_deg + 1) in
      for _ = 1 to deg do
        let child = !next in
        incr next;
        Graph.add_edge g node child;
        grow child (level + 1)
      done
    end
  in
  grow 0 1;
  g

let bom_tree ~seed ~n () =
  let rng = Rng.create seed in
  let g = Graph.create ~n:0 in
  let basic = ref [] in
  let next = ref 1 in
  let queue = Queue.create () in
  Queue.push (0, 1) queue;
  while (not (Queue.is_empty queue)) && !next < n do
    let node, level = Queue.pop queue in
    let children = 5 + Rng.int rng 6 in
    (* leaf probability rises with depth: 0.2 .. 0.6 *)
    let leaf_p = Float.min 0.6 (0.2 +. (0.05 *. float_of_int level)) in
    let made_child = ref false in
    for _ = 1 to children do
      if !next < n then begin
        let child = !next in
        incr next;
        Graph.add_edge g node child;
        made_child := true;
        if Rng.float rng 1.0 < leaf_p then basic := (child, 1 + Rng.int rng 30) :: !basic
        else Queue.push (child, level + 1) queue
      end
    done;
    if not !made_child then basic := (node, 1 + Rng.int rng 30) :: !basic
  done;
  (* everything left unexpanded is a leaf *)
  Queue.iter (fun (node, _) -> basic := (node, 1 + Rng.int rng 30) :: !basic) queue;
  (g, !basic)

let chain ~n =
  let g = Graph.create ~n in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  g

let cycle ~n =
  let g = chain ~n in
  if n > 1 then Graph.add_edge g (n - 1) 0;
  g

let star ~n =
  let g = Graph.create ~n in
  for i = 1 to n - 1 do
    Graph.add_edge g 0 i
  done;
  g

let components ~seed ~count ~size =
  if size < 1 then invalid_arg "Gen.components";
  let rng = Rng.create seed in
  let g = Graph.create ~n:(count * size) in
  for comp = 0 to count - 1 do
    let base = comp * size in
    (* random spanning structure keeps it connected *)
    for v = 1 to size - 1 do
      let u = Rng.int rng v in
      Graph.add_edge g (base + u) (base + v);
      Graph.add_edge g (base + v) (base + u)
    done;
    (* extra chords *)
    for _ = 1 to size / 2 do
      let u = Rng.int rng size and v = Rng.int rng size in
      if u <> v then Graph.add_edge g (base + u) (base + v)
    done
  done;
  g

let friendship ~seed ~people ~avg_friends ~organizers =
  let rng = Rng.create seed in
  let g = Graph.create ~n:people in
  let seen = Hashtbl.create (people * avg_friends) in
  let target = people * avg_friends in
  let tries = ref 0 in
  while Graph.edge_count g < target && !tries < target * 4 do
    incr tries;
    let y = Rng.int rng people and x = Rng.int rng people in
    if y <> x && not (Hashtbl.mem seen (y, x)) then begin
      Hashtbl.add seen (y, x) ();
      Graph.add_edge g y x
    end
  done;
  (g, List.init organizers (fun i -> i))
