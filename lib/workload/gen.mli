(** Deterministic workload generators (paper §7.1.1).

    Everything is seeded; the same arguments always produce the same
    graph, so benchmark runs and tests are exactly reproducible.

    - RMAT: the recursive-matrix generator the paper uses for its
      synthetic scalability graphs; the default (a, b, c) =
      (0.57, 0.19, 0.19) is the standard social-network skew, which is
      also how we synthesize stand-ins for the LiveJournal/Orkut/
      Arabic/Twitter datasets (see DESIGN.md §3).
    - G(n, p): the paper's G-10K uniform random graph family.
    - Random trees: TREE-11 (height 11, degree 2–6) for SG, and the
      N-[n] bill-of-material trees (5–10 children, 20–60% leaf chance)
      for Delivery. *)

val rmat :
  ?a:float -> ?b:float -> ?c:float -> ?weights:int -> seed:int -> scale:int -> edges:int -> unit -> Graph.t
(** 2^scale vertices; [edges] directed edges (duplicates removed, so
    slightly fewer may result).  [weights] draws uniform weights in
    [1..weights] (default 100). *)

val zipf :
  ?alpha:float -> ?weights:int -> seed:int -> n:int -> edges:int -> unit -> Graph.t
(** Power-law out-degree graph: each edge's source is drawn from a
    Zipf([alpha]) distribution over the [n] vertices (default
    [alpha = 1.2]), its target uniformly.  A handful of hub vertices
    own most of the out-degree, so hash partitioning concentrates the
    delta work on a few workers — the skewed workload the work-stealing
    experiments use.  Duplicate edges and self-loops are dropped (the
    retry budget is 8× [edges], so extreme parameters still terminate
    with slightly fewer edges).  Deterministic in all arguments. *)

val gnp : ?weights:int -> seed:int -> n:int -> p:float -> unit -> Graph.t
(** Erdős–Rényi via geometric skipping; O(edges) expected time. *)

val random_tree : seed:int -> height:int -> min_deg:int -> max_deg:int -> unit -> Graph.t
(** Edges point parent → child.  TREE-11 is
    [random_tree ~height:11 ~min_deg:2 ~max_deg:6]. *)

val bom_tree : seed:int -> n:int -> unit -> Graph.t * (int * int) list
(** The paper's N-[n] Delivery input: grows a tree to ~[n] vertices
    where each internal node has 5–10 children, each child turning leaf
    with probability 0.2–0.6 by level.  Returns the [assbl(parent, sub)]
    graph and the [basic(part, days)] facts for the leaves. *)

val chain : n:int -> Graph.t
(** 0 → 1 → ... → n-1, for tests. *)

val cycle : n:int -> Graph.t

val star : n:int -> Graph.t
(** Center 0 with spokes to 1..n-1. *)

val components : seed:int -> count:int -> size:int -> Graph.t
(** [count] disjoint random connected components of [size] vertices
    each — a CC workload with a known answer. *)

val friendship : seed:int -> people:int -> avg_friends:int -> organizers:int ->
  Graph.t * int list
(** Attend-query input: a friendship graph (edges [friend(y, x)] = "y is
    a friend of x") plus the organizer list [0 .. organizers-1]. *)
