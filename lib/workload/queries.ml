module Vec = Dcd_util.Vec

type spec = {
  name : string;
  description : string;
  source : string;
  default_params : (string * int) list;
  output : string;
  max_iterations : int;
}

let fp_scale = 1_000_000_000

let tc =
  {
    name = "tc";
    description = "Transitive Closure (Query 1)";
    source = "tc(X, Y) <- arc(X, Y).\ntc(X, Y) <- tc(X, Z), arc(Z, Y).";
    default_params = [];
    output = "tc";
    max_iterations = 0;
  }

let sg =
  {
    name = "sg";
    description = "Same Generation (Query 5)";
    source =
      "sg(X, Y) <- arc(P, X), arc(P, Y), X != Y.\n\
       sg(X, Y) <- arc(A, X), sg(A, B), arc(B, Y).";
    default_params = [];
    output = "sg";
    max_iterations = 0;
  }

let cc =
  {
    name = "cc";
    description = "Connected Components (Query 2)";
    source =
      "cc2(Y, min<Y>) <- arc(Y, _).\n\
       cc2(Y, min<Z>) <- cc2(X, Z), arc(X, Y).\n\
       cc(Y, min<Z>) <- cc2(Y, Z).";
    default_params = [];
    output = "cc";
    max_iterations = 0;
  }

let sssp =
  {
    name = "sssp";
    description = "Single Source Shortest Path (Query 7)";
    source =
      "sp(To, min<C>) <- To = start, C = 0.\n\
       sp(To2, min<C>) <- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.\n\
       results(To, min<C>) <- sp(To, C).";
    default_params = [ ("start", 0) ];
    output = "results";
    max_iterations = 0;
  }

let pagerank =
  {
    name = "pagerank";
    description = "PageRank (Query 6), fixed-point arithmetic, damping 0.85";
    source =
      (* I = (1 - 0.85) * fp_scale / VNUM ; K = 0.85 * C / D.  The base
         injection uses contributor S = -1 - X, which no vertex id can
         collide with: on graphs with self-loops, the contributor (Y) of
         the recursive rule would otherwise overwrite the injection. *)
      "rank(X, sum<(S, I)>) <- matrix(X, _, _), I = 150000000 / vnum, S = 0 - 1 - X.\n\
       rank(X, sum<(Y, K)>) <- rank(Y, C), matrix(Y, X, D), K = 85 * C / (100 * D).\n\
       results(X, V) <- rank(X, V).";
    default_params = [ ("vnum", 1) ];
    output = "results";
    max_iterations = 20;
  }

let delivery =
  {
    name = "delivery";
    description = "Bill-of-Materials Delivery (Query 8)";
    source =
      "delivery(P, max<D>) <- basic(P, D).\n\
       delivery(P, max<D>) <- assbl(P, S), delivery(S, D).\n\
       results(P, max<D>) <- delivery(P, D).";
    default_params = [];
    output = "results";
    max_iterations = 0;
  }

let apsp =
  {
    name = "apsp";
    description = "All Pairs Shortest Path (Query 3, non-linear recursion)";
    source =
      "path(A, B, min<D>) <- warc(A, B, D).\n\
       path(A, B, min<D>) <- path(A, C, D1), path(C, B, D2), D = D1 + D2.\n\
       apsp(A, B, min<D>) <- path(A, B, D).";
    default_params = [];
    output = "apsp";
    max_iterations = 0;
  }

let attend =
  {
    name = "attend";
    description = "Who will attend the party (Query 4, mutual recursion)";
    source =
      "attend(X) <- organizer(X).\n\
       cnt(Y, count<X>) <- attend(X), friend(Y, X).\n\
       attend(X) <- cnt(X, N), N >= 3.";
    default_params = [];
    output = "attend";
    max_iterations = 0;
  }

let triangle =
  {
    name = "triangle";
    description = "Triangle listing (cyclic conjunctive query, generic join)";
    source =
      "tri(X, Y, Z) <- arc(X, Y), arc(Y, Z), arc(X, Z), X < Y, Y < Z.";
    default_params = [];
    output = "tri";
    max_iterations = 0;
  }

let all = [ tc; sg; cc; sssp; pagerank; delivery; apsp; attend; triangle ]

let find name = List.find_opt (fun s -> String.equal s.name name) all

(* --- EDB builders --- *)

type edb = (string * Dcd_storage.Tuple.t Vec.t) list

let arc_edb g = [ ("arc", Graph.arc_tuples g) ]

let arc_sym_edb g =
  let out = Vec.create ~capacity:(2 * Graph.edge_count g) () in
  Vec.iter
    (fun (u, v, _) ->
      Vec.push out [| u; v |];
      Vec.push out [| v; u |])
    (Graph.edges g);
  [ ("arc", out) ]

let warc_edb g = [ ("warc", Graph.warc_tuples g) ]

let matrix_edb g = [ ("matrix", Graph.matrix_tuples g) ]

let delivery_edb g basic =
  let assbl = Vec.map (fun (u, v, _) -> [| u; v |]) (Graph.edges g) in
  let basic_v = Vec.of_list (List.map (fun (p, d) -> [| p; d |]) basic) in
  [ ("assbl", assbl); ("basic", basic_v) ]

let attend_edb g organizers =
  let friend = Vec.map (fun (y, x, _) -> [| y; x |]) (Graph.edges g) in
  let organizer = Vec.of_list (List.map (fun x -> [| x |]) organizers) in
  [ ("friend", friend); ("organizer", organizer) ]
