(** The paper's benchmark programs (§7.1.1) as Datalog source, plus the
    EDB builders that turn a generated graph into each program's input
    relations.

    PageRank works in fixed-point arithmetic: rank values are scaled by
    {!fp_scale} so that tuples stay integers end-to-end; the damping
    factor 0.85 appears as the integer ratio 85/100 inside the program
    text.  Divide reported values by [fp_scale] to recover floats. *)

type spec = {
  name : string;
  description : string;
  source : string; (** Datalog text, parsable by {!Dcd_datalog.Parser} *)
  default_params : (string * int) list;
  output : string; (** the relation holding the query answer *)
  max_iterations : int; (** 0 = run to fixpoint; PageRank uses a bound *)
}

val tc : spec
val sg : spec
val cc : spec
val sssp : spec
val pagerank : spec
val delivery : spec
val apsp : spec
val attend : spec

val triangle : spec
(** Not from the paper: triangle listing over [arc], the canonical
    cyclic body the generic-join path targets.  Pair with
    {!arc_sym_edb} so the [X < Y < Z] ordering sees every triangle. *)

val all : spec list

val find : string -> spec option
(** Lookup by [spec.name]. *)

val fp_scale : int
(** 1_000_000_000: the fixed-point unit for PageRank values. *)

(** {1 EDB builders} *)

type edb = (string * Dcd_storage.Tuple.t Dcd_util.Vec.t) list

val arc_edb : Graph.t -> edb
(** [arc(u, v)] — TC, SG. *)

val arc_sym_edb : Graph.t -> edb
(** Symmetrized [arc] — CC treats the graph as undirected. *)

val warc_edb : Graph.t -> edb
(** [warc(u, v, w)] — SSSP, APSP. *)

val matrix_edb : Graph.t -> edb
(** [matrix(u, v, outdeg u)] — PageRank.  Pair with
    [("vnum", n)] in params. *)

val delivery_edb : Graph.t -> (int * int) list -> edb
(** [assbl(parent, sub)] from the tree plus [basic(part, days)] facts. *)

val attend_edb : Graph.t -> int list -> edb
(** [friend(y, x)] edges plus [organizer(x)] facts. *)
