module B = Dcd_btree.Bptree

let key = Alcotest.testable (fun fmt k -> Fmt.pf fmt "%a" Fmt.(Dump.array int) k) ( = )

let test_compare_key () =
  Alcotest.(check int) "equal" 0 (B.compare_key [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "lex order" true (B.compare_key [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "prefix sorts first" true (B.compare_key [| 1 |] [| 1; 0 |] < 0);
  Alcotest.(check bool) "first column dominates" true (B.compare_key [| 2; 0 |] [| 1; 9 |] > 0)

let test_insert_find () =
  let t = B.create ~branching:4 () in
  Alcotest.(check bool) "fresh empty" true (B.is_empty t);
  for i = 0 to 200 do
    B.insert t [| (i * 37) mod 211 |] i
  done;
  B.check_invariants t;
  Alcotest.(check int) "length" 201 (B.length t);
  Alcotest.(check (option int)) "find" (Some 0) (B.find_opt t [| 0 |]);
  Alcotest.(check (option int)) "absent" None (B.find_opt t [| 999 |])

let test_insert_replaces () =
  let t = B.create () in
  B.insert t [| 5 |] 1;
  B.insert t [| 5 |] 2;
  Alcotest.(check int) "no duplicate key" 1 (B.length t);
  Alcotest.(check (option int)) "replaced" (Some 2) (B.find_opt t [| 5 |])

let test_upsert () =
  let t = B.create () in
  B.upsert t [| 1 |] (function None -> 10 | Some v -> v + 1);
  B.upsert t [| 1 |] (function None -> 10 | Some v -> v + 1);
  Alcotest.(check (option int)) "upsert accumulates" (Some 11) (B.find_opt t [| 1 |])

let test_add_if_absent () =
  let t = B.create ~branching:4 () in
  (* fresh keys insert; repeats are absorbed without replacing *)
  for i = 0 to 300 do
    let k = [| (i * 37) mod 211; i mod 3 |] in
    let inserted = B.add_if_absent t k i in
    Alcotest.(check bool) "first occurrence inserts" true inserted
  done;
  B.check_invariants t;
  Alcotest.(check int) "length" 301 (B.length t);
  for i = 0 to 300 do
    let k = [| (i * 37) mod 211; i mod 3 |] in
    let inserted = B.add_if_absent t k (-1) in
    Alcotest.(check bool) "repeat absorbed" false inserted
  done;
  B.check_invariants t;
  Alcotest.(check int) "length unchanged" 301 (B.length t);
  Alcotest.(check (option int)) "existing value untouched" (Some 0) (B.find_opt t [| 0; 0 |])

let test_add_if_absent_scratch_key () =
  (* the key buffer may be reused by the caller: the tree must copy *)
  let t = B.create ~branching:4 () in
  let scratch = [| 0 |] in
  for i = 0 to 63 do
    scratch.(0) <- i;
    ignore (B.add_if_absent t scratch i)
  done;
  B.check_invariants t;
  Alcotest.(check int) "all distinct keys stored" 64 (B.length t);
  for i = 0 to 63 do
    Alcotest.(check (option int)) "key survives scratch reuse" (Some i) (B.find_opt t [| i |])
  done

let test_add_if_absent_agrees_with_mem_insert () =
  (* differential: add_if_absent must behave exactly like the
     mem-then-insert sequence it replaces, under a random workload *)
  let rng = Random.State.make [| 42 |] in
  let a = B.create ~branching:4 () in
  let b = B.create ~branching:4 () in
  for i = 0 to 2_000 do
    let k = [| Random.State.int rng 97; Random.State.int rng 7 |] in
    let via_mem = not (B.mem b k) in
    if via_mem then B.insert b k i;
    let via_single = B.add_if_absent a k i in
    Alcotest.(check bool) "same decision" via_mem via_single
  done;
  B.check_invariants a;
  B.check_invariants b;
  Alcotest.(check int) "same cardinality" (B.length b) (B.length a);
  Alcotest.(check bool) "same contents" true (B.to_list a = B.to_list b)

let test_remove () =
  let t = B.create ~branching:4 () in
  for i = 0 to 99 do
    B.insert t [| i |] i
  done;
  for i = 0 to 99 do
    if i mod 3 = 0 then Alcotest.(check bool) "removed" true (B.remove t [| i |])
  done;
  B.check_invariants t;
  Alcotest.(check bool) "remove absent" false (B.remove t [| 0 |]);
  Alcotest.(check int) "length after" 66 (B.length t);
  for i = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "membership %d" i)
      (i mod 3 <> 0)
      (B.mem t [| i |])
  done

let test_iter_sorted () =
  let t = B.create ~branching:5 () in
  let rng = Dcd_util.Rng.create 3 in
  for _ = 1 to 500 do
    B.insert t [| Dcd_util.Rng.int rng 1000; Dcd_util.Rng.int rng 1000 |] 0
  done;
  let prev = ref [||] in
  let sorted = ref true in
  B.iter t (fun k _ ->
      if Array.length !prev > 0 && B.compare_key !prev k >= 0 then sorted := false;
      prev := k);
  Alcotest.(check bool) "ascending iteration" true !sorted

let test_range () =
  let t = B.create ~branching:4 () in
  for i = 0 to 50 do
    B.insert t [| i |] i
  done;
  let got = ref [] in
  B.iter_range t ~lo:[| 10 |] ~hi:[| 15 |] (fun _ v -> got := v :: !got);
  Alcotest.(check (list int)) "half-open range" [ 10; 11; 12; 13; 14 ] (List.rev !got)

let test_prefix () =
  let t = B.create ~branching:4 () in
  for a = 0 to 9 do
    for b = 0 to 9 do
      B.insert t [| a; b |] ((a * 10) + b)
    done
  done;
  let got = ref [] in
  B.iter_prefix t ~prefix:[| 4 |] (fun _ v -> got := v :: !got);
  Alcotest.(check (list int)) "prefix matches" (List.init 10 (fun b -> 40 + b)) (List.rev !got);
  let none = ref 0 in
  B.iter_prefix t ~prefix:[| 42 |] (fun _ _ -> incr none);
  Alcotest.(check int) "no match" 0 !none

let test_min_max () =
  let t = B.create () in
  Alcotest.(check bool) "empty min" true (B.min_binding t = None);
  B.insert t [| 5 |] 5;
  B.insert t [| 1 |] 1;
  B.insert t [| 9 |] 9;
  Alcotest.check key "min" [| 1 |] (fst (Option.get (B.min_binding t)));
  Alcotest.check key "max" [| 9 |] (fst (Option.get (B.max_binding t)))

let test_of_sorted () =
  let entries = Array.init 1234 (fun i -> ([| i * 2 |], i)) in
  let t = B.of_sorted ~branching:6 entries in
  B.check_invariants t;
  Alcotest.(check int) "bulk length" 1234 (B.length t);
  Alcotest.(check (option int)) "bulk find" (Some 617) (B.find_opt t [| 1234 |]);
  Alcotest.check_raises "unsorted rejected" (Invalid_argument "Bptree.of_sorted: keys must be strictly increasing")
    (fun () -> ignore (B.of_sorted [| ([| 2 |], 0); ([| 1 |], 1) |]))

let test_defensive_key_copy () =
  let t = B.create () in
  let k = [| 7 |] in
  B.insert t k 1;
  k.(0) <- 8;
  (* caller mutates its buffer *)
  Alcotest.(check (option int)) "tree unaffected" (Some 1) (B.find_opt t [| 7 |])

(* model-based qcheck against Map *)
module M = Map.Make (struct
  type t = int array

  let compare = B.compare_key
end)

type op =
  | Insert of int * int
  | Remove of int
  | Upsert of int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> Insert (k, v)) (int_range 0 200) small_int;
        map (fun k -> Remove k) (int_range 0 200);
        map (fun k -> Upsert k) (int_range 0 200);
      ])

let prop_matches_map =
  QCheck.Test.make ~name:"random ops match Map" ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 500) op_gen))
    (fun ops ->
      let branching = 4 + (List.length ops mod 5) in
      let t = B.create ~branching () in
      let m = ref M.empty in
      List.iter
        (fun op ->
          match op with
          | Insert (k, v) ->
            B.insert t [| k |] v;
            m := M.add [| k |] v !m
          | Remove k ->
            let a = B.remove t [| k |] in
            let b = M.mem [| k |] !m in
            m := M.remove [| k |] !m;
            assert (a = b)
          | Upsert k ->
            let f = function None -> 1 | Some v -> v + 1 in
            B.upsert t [| k |] f;
            m := M.update [| k |] (fun cur -> Some (f cur)) !m)
        ops;
      B.check_invariants t;
      B.length t = M.cardinal !m
      && M.for_all (fun k v -> B.find_opt t k = Some v) !m
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> B.compare_key k1 k2 = 0 && v1 = v2)
           (B.to_list t) (M.bindings !m))

let prop_range_matches_map =
  QCheck.Test.make ~name:"range scan matches Map filtering" ~count:60
    QCheck.(triple (list (pair (int_range 0 100) small_int)) (int_range 0 100) (int_range 0 100))
    (fun (kvs, a, b) ->
      let lo = min a b and hi = max a b in
      let t = B.create ~branching:4 () in
      let m = ref M.empty in
      List.iter
        (fun (k, v) ->
          B.insert t [| k |] v;
          m := M.add [| k |] v !m)
        kvs;
      let got = ref [] in
      B.iter_range t ~lo:[| lo |] ~hi:[| hi |] (fun k v -> got := (k, v) :: !got);
      let expect =
        M.bindings !m |> List.filter (fun (k, _) -> k.(0) >= lo && k.(0) < hi)
      in
      List.rev !got = expect)

(* --- batch-sorted merge (merge_sorted_slice) --- *)

let msorted t keys ~merge =
  let keys = Array.of_list keys in
  B.merge_sorted_slice t ~n:(Array.length keys) ~key:(fun i -> Array.copy keys.(i)) ~merge

let test_merge_sorted_empty_tree () =
  (* an empty tree degenerates to a bulk load *)
  let t = B.create ~branching:4 () in
  let keys = List.init 500 (fun i -> [| i * 3 |]) in
  msorted t keys ~merge:(fun i -> function None -> Some i | Some _ -> None);
  B.check_invariants t;
  Alcotest.(check int) "bulk loaded" 500 (B.length t);
  Alcotest.(check (option int)) "found" (Some 123) (B.find_opt t [| 369 |]);
  Alcotest.(check bool) "sorted contents" true
    (List.map fst (B.to_list t) = List.init 500 (fun i -> [| i * 3 |]))

let test_merge_sorted_semantics () =
  let t = B.create ~branching:4 () in
  for i = 0 to 9 do
    B.insert t [| 2 * i |] 100
  done;
  (* keys 0,2,..,18 bound to 100; merge a run overlapping half of them *)
  let seen = ref [] in
  msorted t
    (List.init 10 (fun i -> [| i |]))
    ~merge:(fun i cur ->
      seen := (i, cur) :: !seen;
      match cur with
      | Some v -> if i < 4 then Some (v + 1) else None (* overwrite vs keep *)
      | None -> if i mod 2 = 1 then Some (-i) else None (* insert vs skip *));
  B.check_invariants t;
  (* each index visited exactly once, ascending, with the right binding *)
  Alcotest.(check int) "all indices visited" 10 (List.length !seen);
  List.iteri
    (fun j (i, cur) ->
      Alcotest.(check int) "ascending order" j i;
      Alcotest.(check bool) "existing binding seen" (i mod 2 = 0) (cur <> None))
    (List.rev !seen);
  Alcotest.(check (option int)) "overwritten" (Some 101) (B.find_opt t [| 0 |]);
  Alcotest.(check (option int)) "kept" (Some 100) (B.find_opt t [| 4 |]);
  Alcotest.(check (option int)) "inserted" (Some (-1)) (B.find_opt t [| 1 |]);
  Alcotest.(check (option int)) "skipped" None (B.find_opt t [| 8; 0 |]);
  Alcotest.(check int) "count tracks inserts only" (10 + 5) (B.length t)

let test_merge_sorted_bulk_split () =
  (* a run much larger than one leaf forces bulk leaf splits, cascading
     internal splits and root growth in a single call *)
  let t = B.create ~branching:4 () in
  for i = 0 to 30 do
    B.insert t [| i * 100 |] i
  done;
  B.check_invariants t;
  (* dense run landing almost entirely inside existing leaf segments *)
  let keys = List.init 2000 (fun i -> [| i * 7 mod 3100; i * 7 / 3100 |]) in
  let keys = List.sort_uniq B.compare_key keys in
  msorted t keys ~merge:(fun _ -> function None -> Some (-1) | Some _ -> None);
  B.check_invariants t;
  Alcotest.(check int) "all inserted" (31 + List.length keys) (B.length t);
  (* leaf chain still enumerates ascending (checked by invariants) and
     old bindings survived *)
  Alcotest.(check (option int)) "old binding survives" (Some 30) (B.find_opt t [| 3000 |])

let test_merge_sorted_repeated_runs () =
  (* many successive runs over the same tree: the steady-state shape the
     iteration merge path produces *)
  let t = B.create ~branching:6 () in
  let m = ref M.empty in
  let rng = Random.State.make [| 7 |] in
  for _round = 1 to 40 do
    let batch =
      List.init (1 + Random.State.int rng 200) (fun _ ->
          [| Random.State.int rng 500; Random.State.int rng 4 |])
      |> List.sort_uniq B.compare_key
    in
    let batch_arr = Array.of_list batch in
    B.merge_sorted_slice t ~n:(Array.length batch_arr)
      ~key:(fun i -> batch_arr.(i))
      ~merge:(fun i -> function
        | Some _ -> None
        | None ->
          m := M.add batch_arr.(i) i !m;
          Some i);
    B.check_invariants t
  done;
  Alcotest.(check int) "cardinality matches model" (M.cardinal !m) (B.length t);
  Alcotest.(check bool) "contents match model" true
    (List.for_all2
       (fun (k1, v1) (k2, v2) -> B.compare_key k1 k2 = 0 && v1 = v2)
       (B.to_list t) (M.bindings !m))

let prop_merge_sorted_matches_add_if_absent =
  (* differential: a batch-sorted merge of each run must leave exactly
     the tree that per-tuple add_if_absent builds, insert decisions
     included, across random branchings and interleaved run shapes *)
  QCheck.Test.make ~name:"merge_sorted_slice = per-tuple add_if_absent" ~count:60
    QCheck.(
      pair (int_range 4 9)
        (small_list (small_list (pair (int_range 0 120) (int_range 0 5)))))
    (fun (branching, runs) ->
      let bulk = B.create ~branching () in
      let ref_t = B.create ~branching () in
      List.iteri
        (fun round run ->
          let keys =
            List.map (fun (a, b) -> [| a; b |]) run |> List.sort_uniq B.compare_key
          in
          let arr = Array.of_list keys in
          let decisions = Array.make (Array.length arr) false in
          B.merge_sorted_slice bulk ~n:(Array.length arr)
            ~key:(fun i -> arr.(i))
            ~merge:(fun i -> function
              | Some _ -> None
              | None ->
                decisions.(i) <- true;
                Some round);
          Array.iteri
            (fun i k ->
              let ins = B.add_if_absent ref_t k round in
              assert (ins = decisions.(i)))
            arr;
          B.check_invariants bulk)
        runs;
      B.check_invariants ref_t;
      B.length bulk = B.length ref_t
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> B.compare_key k1 k2 = 0 && v1 = v2)
           (B.to_list bulk) (B.to_list ref_t))

let prop_merge_sorted_upsert_matches_map =
  (* aggregate-shaped merges (min upsert) against the Map model *)
  QCheck.Test.make ~name:"merge_sorted_slice min-upsert matches Map" ~count:60
    QCheck.(small_list (small_list (pair (int_range 0 60) (int_range 0 100))))
    (fun runs ->
      let t = B.create ~branching:4 () in
      let m = ref M.empty in
      List.iter
        (fun run ->
          (* combine duplicates within the run like the run-sorter does *)
          let combined =
            List.fold_left
              (fun acc (k, v) ->
                M.update [| k |] (function None -> Some v | Some v0 -> Some (min v0 v)) acc)
              M.empty run
          in
          let arr = Array.of_list (M.bindings combined) in
          B.merge_sorted_slice t ~n:(Array.length arr)
            ~key:(fun i -> fst arr.(i))
            ~merge:(fun i cur ->
              let v = snd arr.(i) in
              match cur with
              | None -> Some v
              | Some v0 -> if v < v0 then Some v else None);
          M.iter
            (fun k v ->
              m := M.update k (function None -> Some v | Some v0 -> Some (min v0 v)) !m)
            combined;
          B.check_invariants t)
        runs;
      B.length t = M.cardinal !m && M.for_all (fun k v -> B.find_opt t k = Some v) !m)

(* --- sorted cursors --- *)

(* small branching so a few dozen keys span several leaves, exercising
   the leaf-boundary hops of seek_geq and cursor_next *)
let cursor_tree n =
  let t = B.create ~branching:4 () in
  for i = 0 to n - 1 do
    B.insert t [| (2 * i) + 1 |] i (* odd keys 1, 3, ..., 2n-1 *)
  done;
  t

let test_cursor_seek_geq () =
  let t = cursor_tree 40 in
  let c = B.cursor t in
  (* exact hits and between-key seeks across every leaf boundary *)
  for i = 0 to 39 do
    let k = (2 * i) + 1 in
    Alcotest.(check bool) "exact hit" true (B.seek_geq c [| k |]);
    Alcotest.(check key) "lands on key" [| k |] (B.cursor_key c);
    Alcotest.(check int) "value" i (B.cursor_value c);
    Alcotest.(check bool) "between keys" true (B.seek_geq c [| k - 1 |]);
    Alcotest.(check key) "rounds up" [| k |] (B.cursor_key c)
  done;
  (* forward-only leapfrog pattern: re-seek to the same position *)
  Alcotest.(check bool) "re-seek same key" true (B.seek_geq c [| 79 |]);
  Alcotest.(check key) "stays" [| 79 |] (B.cursor_key c)

let test_cursor_empty_and_past_max () =
  let t = B.create ~branching:4 () in
  let c = B.cursor t in
  Alcotest.(check bool) "empty tree" false (B.seek_geq c [| 0 |]);
  Alcotest.(check bool) "not positioned" false (B.cursor_positioned c);
  let t = cursor_tree 10 in
  let c = B.cursor t in
  Alcotest.(check bool) "past max" false (B.seek_geq c [| 20 |]);
  Alcotest.(check bool) "exhausted" false (B.cursor_positioned c);
  Alcotest.(check bool) "can re-seek after exhaustion" true (B.seek_geq c [| 0 |]);
  Alcotest.(check key) "back to min" [| 1 |] (B.cursor_key c)

let test_cursor_scan_matches_to_list () =
  let t = cursor_tree 64 in
  let c = B.cursor t in
  let got = ref [] in
  if B.seek_geq c [| min_int |] then begin
    got := [ (B.cursor_key c, B.cursor_value c) ];
    while B.cursor_next c do
      got := (B.cursor_key c, B.cursor_value c) :: !got
    done
  end;
  Alcotest.(check int) "full scan" 64 (List.length !got);
  Alcotest.(check bool) "matches to_list" true (List.rev !got = B.to_list t)

let test_cursor_prefix_seek () =
  (* composite keys: a prefix seek (shorter key) lands on the first key
     carrying that prefix, the contract generic join relies on *)
  let t = B.create ~branching:4 () in
  List.iter
    (fun (a, b) -> B.insert t [| a; b |] (10 * a + b))
    [ (1, 5); (1, 9); (2, 0); (2, 7); (4, 2) ];
  let c = B.cursor t in
  Alcotest.(check bool) "prefix 1" true (B.seek_geq c [| 1 |]);
  Alcotest.(check key) "first under 1" [| 1; 5 |] (B.cursor_key c);
  Alcotest.(check bool) "prefix 2" true (B.seek_geq c [| 2 |]);
  Alcotest.(check key) "first under 2" [| 2; 0 |] (B.cursor_key c);
  Alcotest.(check bool) "absent prefix 3 rounds up" true (B.seek_geq c [| 3 |]);
  Alcotest.(check key) "lands on 4" [| 4; 2 |] (B.cursor_key c);
  Alcotest.(check bool) "prefix past max" false (B.seek_geq c [| 5 |])

let test_cursor_resume_after_inserts () =
  let t = cursor_tree 20 in
  (* position mid-tree, then mutate: inserts before, at-gap and after
     the cursor, enough to split leaves *)
  let c = B.cursor t in
  Alcotest.(check bool) "position" true (B.seek_geq c [| 21 |]);
  for i = 0 to 19 do
    B.insert t [| 2 * i |] (100 + i)
  done;
  (* value read re-locates through the version check *)
  Alcotest.(check int) "value after split" 10 (B.cursor_value c);
  (* next steps to the key now between 21 and 23 *)
  Alcotest.(check bool) "next" true (B.cursor_next c);
  Alcotest.(check key) "sees interleaved key" [| 22 |] (B.cursor_key c);
  (* removing the key under the cursor: next resumes at its successor *)
  ignore (B.remove t [| 22 |]);
  Alcotest.(check bool) "next after remove" true (B.cursor_next c);
  Alcotest.(check key) "successor" [| 23 |] (B.cursor_key c);
  B.check_invariants t

let prop_cursor_heavy =
  (* interleave inserts/removes with seeks and bounded walks; the tree
     must keep its invariants and every seek must agree with a Map *)
  QCheck.Test.make ~name:"cursor-heavy workload keeps invariants" ~count:60
    QCheck.(list (pair (int_range 0 3) (int_range 0 60)))
    (fun ops ->
      let t = B.create ~branching:4 () in
      let m = ref M.empty in
      let c = B.cursor t in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 | 1 ->
            B.insert t [| k |] k;
            m := M.add [| k |] k !m
          | 2 ->
            ignore (B.remove t [| k |]);
            m := M.remove [| k |] !m
          | _ ->
            let want = M.find_first_opt (fun key -> key.(0) >= k) !m in
            let got = B.seek_geq c [| k |] in
            assert (got = (want <> None));
            (match want with
            | Some (wk, _) -> assert (B.compare_key (B.cursor_key c) wk = 0)
            | None -> ());
            (* short walk from the landing point *)
            if got then ignore (B.cursor_next c))
        ops;
      B.check_invariants t;
      B.length t = M.cardinal !m)

let () =
  Alcotest.run "bptree"
    [
      ( "unit",
        [
          Alcotest.test_case "compare_key" `Quick test_compare_key;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
          Alcotest.test_case "upsert" `Quick test_upsert;
          Alcotest.test_case "add_if_absent" `Quick test_add_if_absent;
          Alcotest.test_case "add_if_absent scratch key" `Quick test_add_if_absent_scratch_key;
          Alcotest.test_case "add_if_absent = mem+insert" `Quick
            test_add_if_absent_agrees_with_mem_insert;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "sorted iteration" `Quick test_iter_sorted;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "prefix" `Quick test_prefix;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "of_sorted" `Quick test_of_sorted;
          Alcotest.test_case "defensive key copy" `Quick test_defensive_key_copy;
        ] );
      ( "bulk merge",
        [
          Alcotest.test_case "empty tree = bulk load" `Quick test_merge_sorted_empty_tree;
          Alcotest.test_case "merge-callback semantics" `Quick test_merge_sorted_semantics;
          Alcotest.test_case "bulk leaf/internal splits" `Quick test_merge_sorted_bulk_split;
          Alcotest.test_case "repeated runs" `Quick test_merge_sorted_repeated_runs;
          QCheck_alcotest.to_alcotest prop_merge_sorted_matches_add_if_absent;
          QCheck_alcotest.to_alcotest prop_merge_sorted_upsert_matches_map;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "seek_geq across leaves" `Quick test_cursor_seek_geq;
          Alcotest.test_case "empty tree and past-max" `Quick test_cursor_empty_and_past_max;
          Alcotest.test_case "full scan = to_list" `Quick test_cursor_scan_matches_to_list;
          Alcotest.test_case "prefix seek" `Quick test_cursor_prefix_seek;
          Alcotest.test_case "resume after interleaved inserts" `Quick
            test_cursor_resume_after_inserts;
          QCheck_alcotest.to_alcotest prop_cursor_heavy;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_matches_map;
          QCheck_alcotest.to_alcotest prop_range_matches_map;
        ] );
    ]
