module B = Dcd_btree.Bptree

let key = Alcotest.testable (fun fmt k -> Fmt.pf fmt "%a" Fmt.(Dump.array int) k) ( = )

let test_compare_key () =
  Alcotest.(check int) "equal" 0 (B.compare_key [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "lex order" true (B.compare_key [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "prefix sorts first" true (B.compare_key [| 1 |] [| 1; 0 |] < 0);
  Alcotest.(check bool) "first column dominates" true (B.compare_key [| 2; 0 |] [| 1; 9 |] > 0)

let test_insert_find () =
  let t = B.create ~branching:4 () in
  Alcotest.(check bool) "fresh empty" true (B.is_empty t);
  for i = 0 to 200 do
    B.insert t [| (i * 37) mod 211 |] i
  done;
  B.check_invariants t;
  Alcotest.(check int) "length" 201 (B.length t);
  Alcotest.(check (option int)) "find" (Some 0) (B.find_opt t [| 0 |]);
  Alcotest.(check (option int)) "absent" None (B.find_opt t [| 999 |])

let test_insert_replaces () =
  let t = B.create () in
  B.insert t [| 5 |] 1;
  B.insert t [| 5 |] 2;
  Alcotest.(check int) "no duplicate key" 1 (B.length t);
  Alcotest.(check (option int)) "replaced" (Some 2) (B.find_opt t [| 5 |])

let test_upsert () =
  let t = B.create () in
  B.upsert t [| 1 |] (function None -> 10 | Some v -> v + 1);
  B.upsert t [| 1 |] (function None -> 10 | Some v -> v + 1);
  Alcotest.(check (option int)) "upsert accumulates" (Some 11) (B.find_opt t [| 1 |])

let test_add_if_absent () =
  let t = B.create ~branching:4 () in
  (* fresh keys insert; repeats are absorbed without replacing *)
  for i = 0 to 300 do
    let k = [| (i * 37) mod 211; i mod 3 |] in
    let inserted = B.add_if_absent t k i in
    Alcotest.(check bool) "first occurrence inserts" true inserted
  done;
  B.check_invariants t;
  Alcotest.(check int) "length" 301 (B.length t);
  for i = 0 to 300 do
    let k = [| (i * 37) mod 211; i mod 3 |] in
    let inserted = B.add_if_absent t k (-1) in
    Alcotest.(check bool) "repeat absorbed" false inserted
  done;
  B.check_invariants t;
  Alcotest.(check int) "length unchanged" 301 (B.length t);
  Alcotest.(check (option int)) "existing value untouched" (Some 0) (B.find_opt t [| 0; 0 |])

let test_add_if_absent_scratch_key () =
  (* the key buffer may be reused by the caller: the tree must copy *)
  let t = B.create ~branching:4 () in
  let scratch = [| 0 |] in
  for i = 0 to 63 do
    scratch.(0) <- i;
    ignore (B.add_if_absent t scratch i)
  done;
  B.check_invariants t;
  Alcotest.(check int) "all distinct keys stored" 64 (B.length t);
  for i = 0 to 63 do
    Alcotest.(check (option int)) "key survives scratch reuse" (Some i) (B.find_opt t [| i |])
  done

let test_add_if_absent_agrees_with_mem_insert () =
  (* differential: add_if_absent must behave exactly like the
     mem-then-insert sequence it replaces, under a random workload *)
  let rng = Random.State.make [| 42 |] in
  let a = B.create ~branching:4 () in
  let b = B.create ~branching:4 () in
  for i = 0 to 2_000 do
    let k = [| Random.State.int rng 97; Random.State.int rng 7 |] in
    let via_mem = not (B.mem b k) in
    if via_mem then B.insert b k i;
    let via_single = B.add_if_absent a k i in
    Alcotest.(check bool) "same decision" via_mem via_single
  done;
  B.check_invariants a;
  B.check_invariants b;
  Alcotest.(check int) "same cardinality" (B.length b) (B.length a);
  Alcotest.(check bool) "same contents" true (B.to_list a = B.to_list b)

let test_remove () =
  let t = B.create ~branching:4 () in
  for i = 0 to 99 do
    B.insert t [| i |] i
  done;
  for i = 0 to 99 do
    if i mod 3 = 0 then Alcotest.(check bool) "removed" true (B.remove t [| i |])
  done;
  B.check_invariants t;
  Alcotest.(check bool) "remove absent" false (B.remove t [| 0 |]);
  Alcotest.(check int) "length after" 66 (B.length t);
  for i = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "membership %d" i)
      (i mod 3 <> 0)
      (B.mem t [| i |])
  done

let test_iter_sorted () =
  let t = B.create ~branching:5 () in
  let rng = Dcd_util.Rng.create 3 in
  for _ = 1 to 500 do
    B.insert t [| Dcd_util.Rng.int rng 1000; Dcd_util.Rng.int rng 1000 |] 0
  done;
  let prev = ref [||] in
  let sorted = ref true in
  B.iter t (fun k _ ->
      if Array.length !prev > 0 && B.compare_key !prev k >= 0 then sorted := false;
      prev := k);
  Alcotest.(check bool) "ascending iteration" true !sorted

let test_range () =
  let t = B.create ~branching:4 () in
  for i = 0 to 50 do
    B.insert t [| i |] i
  done;
  let got = ref [] in
  B.iter_range t ~lo:[| 10 |] ~hi:[| 15 |] (fun _ v -> got := v :: !got);
  Alcotest.(check (list int)) "half-open range" [ 10; 11; 12; 13; 14 ] (List.rev !got)

let test_prefix () =
  let t = B.create ~branching:4 () in
  for a = 0 to 9 do
    for b = 0 to 9 do
      B.insert t [| a; b |] ((a * 10) + b)
    done
  done;
  let got = ref [] in
  B.iter_prefix t ~prefix:[| 4 |] (fun _ v -> got := v :: !got);
  Alcotest.(check (list int)) "prefix matches" (List.init 10 (fun b -> 40 + b)) (List.rev !got);
  let none = ref 0 in
  B.iter_prefix t ~prefix:[| 42 |] (fun _ _ -> incr none);
  Alcotest.(check int) "no match" 0 !none

let test_min_max () =
  let t = B.create () in
  Alcotest.(check bool) "empty min" true (B.min_binding t = None);
  B.insert t [| 5 |] 5;
  B.insert t [| 1 |] 1;
  B.insert t [| 9 |] 9;
  Alcotest.check key "min" [| 1 |] (fst (Option.get (B.min_binding t)));
  Alcotest.check key "max" [| 9 |] (fst (Option.get (B.max_binding t)))

let test_of_sorted () =
  let entries = Array.init 1234 (fun i -> ([| i * 2 |], i)) in
  let t = B.of_sorted ~branching:6 entries in
  B.check_invariants t;
  Alcotest.(check int) "bulk length" 1234 (B.length t);
  Alcotest.(check (option int)) "bulk find" (Some 617) (B.find_opt t [| 1234 |]);
  Alcotest.check_raises "unsorted rejected" (Invalid_argument "Bptree.of_sorted: keys must be strictly increasing")
    (fun () -> ignore (B.of_sorted [| ([| 2 |], 0); ([| 1 |], 1) |]))

let test_defensive_key_copy () =
  let t = B.create () in
  let k = [| 7 |] in
  B.insert t k 1;
  k.(0) <- 8;
  (* caller mutates its buffer *)
  Alcotest.(check (option int)) "tree unaffected" (Some 1) (B.find_opt t [| 7 |])

(* model-based qcheck against Map *)
module M = Map.Make (struct
  type t = int array

  let compare = B.compare_key
end)

type op =
  | Insert of int * int
  | Remove of int
  | Upsert of int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> Insert (k, v)) (int_range 0 200) small_int;
        map (fun k -> Remove k) (int_range 0 200);
        map (fun k -> Upsert k) (int_range 0 200);
      ])

let prop_matches_map =
  QCheck.Test.make ~name:"random ops match Map" ~count:60
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 500) op_gen))
    (fun ops ->
      let branching = 4 + (List.length ops mod 5) in
      let t = B.create ~branching () in
      let m = ref M.empty in
      List.iter
        (fun op ->
          match op with
          | Insert (k, v) ->
            B.insert t [| k |] v;
            m := M.add [| k |] v !m
          | Remove k ->
            let a = B.remove t [| k |] in
            let b = M.mem [| k |] !m in
            m := M.remove [| k |] !m;
            assert (a = b)
          | Upsert k ->
            let f = function None -> 1 | Some v -> v + 1 in
            B.upsert t [| k |] f;
            m := M.update [| k |] (fun cur -> Some (f cur)) !m)
        ops;
      B.check_invariants t;
      B.length t = M.cardinal !m
      && M.for_all (fun k v -> B.find_opt t k = Some v) !m
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> B.compare_key k1 k2 = 0 && v1 = v2)
           (B.to_list t) (M.bindings !m))

let prop_range_matches_map =
  QCheck.Test.make ~name:"range scan matches Map filtering" ~count:60
    QCheck.(triple (list (pair (int_range 0 100) small_int)) (int_range 0 100) (int_range 0 100))
    (fun (kvs, a, b) ->
      let lo = min a b and hi = max a b in
      let t = B.create ~branching:4 () in
      let m = ref M.empty in
      List.iter
        (fun (k, v) ->
          B.insert t [| k |] v;
          m := M.add [| k |] v !m)
        kvs;
      let got = ref [] in
      B.iter_range t ~lo:[| lo |] ~hi:[| hi |] (fun k v -> got := (k, v) :: !got);
      let expect =
        M.bindings !m |> List.filter (fun (k, _) -> k.(0) >= lo && k.(0) < hi)
      in
      List.rev !got = expect)

let () =
  Alcotest.run "bptree"
    [
      ( "unit",
        [
          Alcotest.test_case "compare_key" `Quick test_compare_key;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
          Alcotest.test_case "upsert" `Quick test_upsert;
          Alcotest.test_case "add_if_absent" `Quick test_add_if_absent;
          Alcotest.test_case "add_if_absent scratch key" `Quick test_add_if_absent_scratch_key;
          Alcotest.test_case "add_if_absent = mem+insert" `Quick
            test_add_if_absent_agrees_with_mem_insert;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "sorted iteration" `Quick test_iter_sorted;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "prefix" `Quick test_prefix;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "of_sorted" `Quick test_of_sorted;
          Alcotest.test_case "defensive key copy" `Quick test_defensive_key_copy;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_matches_map;
          QCheck_alcotest.to_alcotest prop_range_matches_map;
        ] );
    ]
