(* Differential testing: the parallel engine against the independent
   naive AST interpreter on randomly generated inputs, for every kind of
   recursion and aggregate the paper exercises. *)

module D = Dcdatalog

let edges_gen =
  QCheck.Gen.(
    let* n = int_range 2 14 in
    let* m = int_range 0 40 in
    let edge = pair (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
    list_repeat m edge)

let wedges_gen =
  QCheck.Gen.(
    let* n = int_range 2 12 in
    let* m = int_range 0 30 in
    list_repeat m (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 9)))

let run_engine ?params ~config src edb =
  match
    D.query ?params ~config src
      ~edb:(List.map (fun (n, rows) -> (n, D.Vec.of_list rows)) edb)
  with
  | Ok r -> r
  | Error e -> failwith e

let run_naive ?params src edb =
  D.Naive.run ?params (D.Parser.parse_program src)
    ~edb:(List.map (fun (n, rows) -> (n, rows)) edb)

let agree ?params ~outputs src edb config =
  let engine = run_engine ?params ~config src edb in
  let oracle = run_naive ?params src edb in
  List.for_all
    (fun out ->
      let got = D.relation engine out in
      let want =
        match List.assoc_opt out oracle with
        | Some rows -> List.sort compare (List.map Array.to_list rows)
        | None -> []
      in
      got = want)
    outputs

let config_gen =
  QCheck.Gen.(
    let* workers = int_range 1 4 in
    let* strat = int_range 0 2 in
    let strategy =
      match strat with 0 -> D.Coord.Global | 1 -> D.Coord.Ssp 2 | _ -> D.Coord.dws
    in
    let* optimized = bool in
    let* steal = bool in
    let* batch_merge = bool in
    return
      {
        D.default_config with
        workers;
        strategy;
        steal;
        merge = (if batch_merge then D.Parallel.Batch_sorted else D.Parallel.Per_tuple);
        store_opts = (if optimized then D.Rec_store.default_opts else D.Rec_store.unoptimized_opts);
      })

let make_prop name gen prop = QCheck.Test.make ~name ~count:40 (QCheck.make gen) prop

let prop_tc =
  make_prop "tc: engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      let edb = [ ("arc", List.map (fun (a, b) -> [| a; b |]) edges) ] in
      agree ~outputs:[ "tc" ] D.Queries.tc.source edb config)

let prop_cc =
  make_prop "cc: engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      let sym = List.concat_map (fun (a, b) -> [ [| a; b |]; [| b; a |] ]) edges in
      agree ~outputs:[ "cc" ] D.Queries.cc.source [ ("arc", sym) ] config)

let prop_sssp =
  make_prop "sssp: engine = naive"
    QCheck.Gen.(pair wedges_gen config_gen)
    (fun (edges, config) ->
      let edb = [ ("warc", List.map (fun (a, b, w) -> [| a; b; w |]) edges) ] in
      agree ~params:[ ("start", 0) ] ~outputs:[ "results" ] D.Queries.sssp.source edb config)

let prop_apsp =
  make_prop "apsp (nonlinear): engine = naive"
    QCheck.Gen.(pair wedges_gen config_gen)
    (fun (edges, config) ->
      let edb = [ ("warc", List.map (fun (a, b, w) -> [| a; b; w |]) edges) ] in
      agree ~outputs:[ "apsp" ] D.Queries.apsp.source edb config)

let prop_sg =
  make_prop "sg: engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      (* SG blows up on dense graphs; thin the input *)
      let edges = List.filteri (fun i _ -> i < 16) edges in
      let edb = [ ("arc", List.map (fun (a, b) -> [| a; b |]) edges) ] in
      agree ~outputs:[ "sg" ] D.Queries.sg.source edb config)

let prop_attend =
  make_prop "attend (mutual+count): engine = naive"
    QCheck.Gen.(triple edges_gen (int_range 1 3) config_gen)
    (fun (edges, orgs, config) ->
      let friend = List.map (fun (a, b) -> [| a; b |]) edges in
      let organizer = List.init orgs (fun i -> [| i |]) in
      agree ~outputs:[ "attend"; "cnt" ] D.Queries.attend.source
        [ ("friend", friend); ("organizer", organizer) ]
        config)

let prop_delivery =
  make_prop "delivery (max): engine = naive"
    QCheck.Gen.(pair (int_range 5 60) config_gen)
    (fun (n, config) ->
      let tree, basics = D.Datasets.bom n in
      let assbl =
        D.Vec.to_list (D.Graph.edges tree) |> List.map (fun (a, b, _) -> [| a; b |])
      in
      let basic = List.map (fun (p, d) -> [| p; d |]) basics in
      agree ~outputs:[ "results" ] D.Queries.delivery.source
        [ ("assbl", assbl); ("basic", basic) ]
        config)

let prop_pagerank =
  (* the fixed-point-integer PageRank is a monotone fixpoint (sums only
     grow), so engine and oracle must converge to identical values when
     given enough iterations *)
  make_prop "pagerank (sum): engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      let edges = List.filteri (fun i _ -> i < 12) edges in
      if edges = [] then true
      else begin
        let n = 1 + List.fold_left (fun m (a, b) -> max m (max a b)) 0 edges in
        let deg = Array.make n 0 in
        List.iter (fun (a, _) -> deg.(a) <- deg.(a) + 1) edges;
        let matrix = List.map (fun (a, b) -> [| a; b; deg.(a) |]) edges in
        let params = [ ("vnum", n) ] in
        let config = { config with D.max_iterations = 1000 } in
        let engine =
          run_engine ~params ~config D.Queries.pagerank.source [ ("matrix", matrix) ]
        in
        let oracle =
          D.Naive.run ~params ~max_iterations:1000
            (D.Parser.parse_program D.Queries.pagerank.source)
            ~edb:[ ("matrix", matrix) ]
        in
        let got = D.relation engine "results" in
        let want = List.sort compare (List.map Array.to_list (List.assoc "results" oracle)) in
        if got <> want then begin
          Printf.eprintf "pagerank mismatch: edges=%s workers=%d strategy=%s\n%!"
            (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) edges))
            config.D.workers
            (D.Coord.to_string config.D.strategy);
          false
        end
        else true
      end)

(* Exhaustive grid for the merge-path acceptance criterion: on a fixed
   graph, TC/CC/SG under batch-sorted AND per-tuple merging must return
   output identical to the naive oracle for every strategy x steal x
   worker-count combination — the fixpoint must not depend on how deltas
   are folded into the stores. *)
let test_merge_path_grid () =
  let rng = Dcd_util.Rng.create 17 in
  let edges = List.init 60 (fun _ -> (Dcd_util.Rng.int rng 18, Dcd_util.Rng.int rng 18)) in
  let arc = List.map (fun (a, b) -> [| a; b |]) edges in
  let sym = List.concat_map (fun (a, b) -> [ [| a; b |]; [| b; a |] ]) edges in
  let queries =
    [ ("tc", D.Queries.tc.source, [ ("arc", arc) ]);
      ("cc", D.Queries.cc.source, [ ("arc", sym) ]);
      ("sg", D.Queries.sg.source, [ ("arc", List.filteri (fun i _ -> i < 16) arc) ]) ]
  in
  List.iter
    (fun (out, src, edb) ->
      List.iter
        (fun merge ->
          List.iter
            (fun strategy ->
              List.iter
                (fun steal ->
                  List.iter
                    (fun workers ->
                      let config =
                        { D.default_config with workers; strategy; steal; merge }
                      in
                      if not (agree ~outputs:[ out ] src edb config) then
                        Alcotest.failf "%s: engine != naive (merge=%s %s steal=%b workers=%d)"
                          out
                          (match merge with
                          | D.Parallel.Batch_sorted -> "batch"
                          | D.Parallel.Per_tuple -> "per-tuple")
                          (D.Coord.to_string strategy) steal workers)
                    [ 1; 4 ])
                [ false; true ])
            [ D.Coord.Global; D.Coord.Ssp 2; D.Coord.dws ])
        [ D.Parallel.Batch_sorted; D.Parallel.Per_tuple ])
    queries

let () =
  Alcotest.run "differential"
    [
      ( "engine vs naive oracle",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_tc; prop_cc; prop_sssp; prop_apsp; prop_sg; prop_attend; prop_delivery;
            prop_pagerank;
          ] );
      ( "merge-path grid",
        [ Alcotest.test_case "tc/cc/sg: batch = per-tuple = naive" `Quick test_merge_path_grid ] );
    ]
