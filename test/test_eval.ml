open Dcd_datalog
module Ph = Dcd_planner.Physical
module Eval = Dcd_engine.Eval
module Relation = Dcd_storage.Relation
module Vec = Dcd_util.Vec

(* Build a tiny manual context over in-memory relations. *)
let make_ctx rels =
  let find name = List.assoc name rels in
  {
    Eval.base_iter = (fun pred f -> Relation.iter_slices (find pred) f);
    base_index =
      (fun pred cols -> Relation.ensure_index (find pred) ~key_cols:cols);
    base_sorted =
      (fun pred cols -> Relation.ensure_sorted_index (find pred) ~cols);
    rec_resolve =
      (fun ~pred ~route:_ -> Alcotest.fail ("unexpected rec lookup " ^ pred));
    rec_matches = (fun _ ~key:_ _ -> Alcotest.fail "unexpected rec probe");
  }

let rel name arity rows =
  let r = Relation.create ~name ~arity () in
  List.iter (fun row -> ignore (Relation.add r (Array.of_list row))) rows;
  (name, r)

let compile_single src =
  let info = Result.get_ok (Analysis.analyze (Parser.parse_program src)) in
  let plan = Result.get_ok (Ph.compile info) in
  let sp = List.hd plan.strata in
  List.hd (sp.init_rules @ sp.delta_rules)

let collect cr ctx scan =
  let out = ref [] in
  let n =
    Eval.run cr ctx ~scan ~emit:(fun ~tuple ~contributor ->
        out := (Array.to_list tuple, Array.to_list contributor) :: !out)
  in
  (n, List.sort compare !out)

let test_scan_project () =
  let cr = compile_single "p(Y, X) <- e(X, Y)." in
  let ctx = make_ctx [ rel "e" 2 [ [ 1; 2 ]; [ 3; 4 ] ] ] in
  let n, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 2 |]; [| 3; 4 |] ])) in
  Alcotest.(check int) "scanned" 2 n;
  Alcotest.(check (list (pair (list int) (list int))))
    "projection swaps columns"
    [ ([ 2; 1 ], []); ([ 4; 3 ], []) ]
    out

let test_index_join () =
  let cr = compile_single "p(X, Z) <- e(X, Y), f(Y, Z)." in
  let ctx = make_ctx [ rel "e" 2 []; rel "f" 2 [ [ 2; 20 ]; [ 2; 21 ]; [ 9; 90 ] ] ] in
  let n, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 2 |] ])) in
  Alcotest.(check int) "one scan tuple" 1 n;
  Alcotest.(check (list (pair (list int) (list int))))
    "two join matches"
    [ ([ 1; 20 ], []); ([ 1; 21 ], []) ]
    out

let test_filter_and_compute () =
  let cr = compile_single "p(X, C) <- e(X, Y), Y > 1, C = X * 10 + Y." in
  let ctx = make_ctx [ rel "e" 2 [] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 2 |]; [| 3; 0 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "filter drops, compute computes"
    [ ([ 1; 12 ], []) ]
    out

let test_division_by_zero_drops () =
  let cr = compile_single "p(C) <- e(X, Y), C = X / Y." in
  let ctx = make_ctx [ rel "e" 2 [] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 6; 2 |]; [| 1; 0 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "zero divisor dropped silently"
    [ ([ 3 ], []) ]
    out

let test_repeated_var_in_scan () =
  let cr = compile_single "p(X) <- e(X, X)." in
  let ctx = make_ctx [ rel "e" 2 [] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 1 |]; [| 1; 2 |]; [| 3; 3 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "diagonal only"
    [ ([ 1 ], []); ([ 3 ], []) ]
    out

let test_repeated_var_in_lookup () =
  let cr = compile_single "p(X) <- e(X, Y), f(Y, Y)." in
  let ctx = make_ctx [ rel "e" 2 []; rel "f" 2 [ [ 2; 2 ]; [ 3; 4 ] ] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 2 |]; [| 9; 3 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "lookup residual check"
    [ ([ 1 ], []) ]
    out

let test_negation () =
  let cr = compile_single "p(X) <- e(X, Y), !f(Y)." in
  let ctx = make_ctx [ rel "e" 2 []; rel "f" 1 [ [ 2 ] ] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 2 |]; [| 3; 4 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "anti-join"
    [ ([ 3 ], []) ]
    out

let test_unit_scan () =
  let cr = compile_single "p(X, Y) <- X = 1, Y = 2." in
  let ctx = make_ctx [] in
  let n, out = collect cr ctx `Unit in
  Alcotest.(check int) "unit processes once" 1 n;
  Alcotest.(check (list (pair (list int) (list int)))) "constants" [ ([ 1; 2 ], []) ] out

let test_agg_emit () =
  let cr = compile_single "c(Y, count<X>) <- e(Y, X)." in
  let ctx = make_ctx [ rel "e" 2 [] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 1; 7 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "contributor carried"
    [ ([ 1; 0 ], [ 7 ]) ]
    out

let test_scan_constant_check () =
  let cr = compile_single "p(X) <- e(3, X)." in
  let ctx = make_ctx [ rel "e" 2 [] ] in
  let _, out = collect cr ctx (`Tuples (Vec.of_list [ [| 3; 5 |]; [| 4; 6 |] ])) in
  Alcotest.(check (list (pair (list int) (list int)))) "constant filters scan"
    [ ([ 5 ], []) ]
    out

let () =
  Alcotest.run "eval"
    [
      ( "unit",
        [
          Alcotest.test_case "scan/project" `Quick test_scan_project;
          Alcotest.test_case "index join" `Quick test_index_join;
          Alcotest.test_case "filter and compute" `Quick test_filter_and_compute;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero_drops;
          Alcotest.test_case "repeated var in scan" `Quick test_repeated_var_in_scan;
          Alcotest.test_case "repeated var in lookup" `Quick test_repeated_var_in_lookup;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "unit scan" `Quick test_unit_scan;
          Alcotest.test_case "aggregate emit" `Quick test_agg_emit;
          Alcotest.test_case "constant in scan" `Quick test_scan_constant_check;
        ] );
    ]
