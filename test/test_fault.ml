(* Fault-tolerance layer: cancel tokens, deterministic injection,
   watchdog, multi-failure domain pool, and the engine's structured
   errors (crash containment under every strategy, deadline
   cancellation, watchdog stall detection). *)

module D = Dcdatalog
module Cancel = Dcd_concurrent.Cancel
module Fault = Dcd_concurrent.Fault
module Watchdog = Dcd_concurrent.Watchdog
module Domain_pool = Dcd_concurrent.Domain_pool
module Clock = Dcd_util.Clock

(* --- Cancel --- *)

let test_cancel_token () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token unset" false (Cancel.is_set t);
  Alcotest.(check bool) "fresh token passes check" false (Cancel.check t);
  Alcotest.(check bool) "first cancel wins" true (Cancel.cancel t Cancel.User);
  Alcotest.(check bool) "second cancel loses" false (Cancel.cancel t Cancel.Stall);
  Alcotest.(check bool) "set after cancel" true (Cancel.is_set t);
  match Cancel.reason t with
  | Some Cancel.User -> ()
  | _ -> Alcotest.fail "first reason must stick"

let test_cancel_deadline () =
  let t = Cancel.create () in
  Alcotest.(check (option (float 0.))) "no deadline by default" None (Cancel.deadline t);
  Cancel.arm_deadline t ~at:(Clock.now () -. 1.);
  Alcotest.(check bool) "is_set alone ignores the deadline" false (Cancel.is_set t);
  Alcotest.(check bool) "check trips the passed deadline" true (Cancel.check t);
  (match Cancel.reason t with
  | Some Cancel.Deadline -> ()
  | _ -> Alcotest.fail "deadline reason");
  let t2 = Cancel.create () in
  Cancel.arm_deadline t2 ~at:(Clock.now () +. 3600.);
  Cancel.arm_deadline t2 ~at:(Clock.now () +. 7200.);
  Alcotest.(check bool) "arming only tightens" false (Cancel.check t2)

(* --- Fault determinism --- *)

(* Record each worker's decision stream as (crash ordinal | delay count)
   and check two instances with the same seed agree exactly. *)
let fault_trace spec ~workers ~hits =
  let f = Fault.create ~workers spec in
  let trace = Array.make workers [] in
  for w = 0 to workers - 1 do
    for _ = 1 to hits do
      match Fault.hit f Fault.Merge ~worker:w with
      | () -> ()
      | exception Fault.Injected { ordinal; _ } -> trace.(w) <- ordinal :: trace.(w)
    done
  done;
  Array.map List.rev trace

let test_fault_deterministic () =
  let spec = { Fault.off with seed = 42; crash_prob = 0.05; max_crashes = 1000 } in
  let a = fault_trace spec ~workers:3 ~hits:400 in
  let b = fault_trace spec ~workers:3 ~hits:400 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "some crashes were scheduled" true
    (Array.exists (fun l -> l <> []) a);
  let c = fault_trace { spec with seed = 43 } ~workers:3 ~hits:400 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_fault_budget_and_filter () =
  let spec =
    { Fault.off with seed = 7; crash_prob = 1.0; crash_workers = [ 1 ]; max_crashes = 1 }
  in
  let f = Fault.create ~workers:2 spec in
  (* worker 0 is filtered out entirely *)
  for _ = 1 to 50 do
    Fault.hit f Fault.Loop ~worker:0
  done;
  (match Fault.hit f Fault.Loop ~worker:1 with
  | () -> Alcotest.fail "worker 1 must crash at probability 1"
  | exception Fault.Injected { worker; _ } -> Alcotest.(check int) "origin worker" 1 worker);
  (* budget of one: no further crashes *)
  for _ = 1 to 50 do
    Fault.hit f Fault.Loop ~worker:1
  done;
  Alcotest.(check int) "budget respected" 1 (Fault.injected_crashes f)

(* --- Watchdog --- *)

let test_watchdog_fires_on_stall () =
  let fired = ref 0 in
  let ticks = ref 0 in
  let w =
    Watchdog.spawn ~window:0.05 ~poll:0.01
      ~progress:(fun () -> 0)
      ~on_stall:(fun () -> incr fired)
      ~on_tick:(fun () -> incr ticks)
      ()
  in
  Unix.sleepf 0.3;
  Watchdog.stop w;
  Alcotest.(check int) "fired exactly once" 1 !fired;
  Alcotest.(check bool) "kept ticking" true (!ticks > 3)

let test_watchdog_quiet_under_progress () =
  let fired = ref 0 in
  let counter = Atomic.make 0 in
  let w =
    Watchdog.spawn ~window:0.08 ~poll:0.01
      ~progress:(fun () -> Atomic.get counter)
      ~on_stall:(fun () -> incr fired)
      ~on_tick:(fun () -> ())
      ()
  in
  for _ = 1 to 10 do
    Unix.sleepf 0.02;
    Atomic.incr counter
  done;
  Watchdog.stop w;
  Alcotest.(check int) "never fired while progressing" 0 !fired

(* --- Domain_pool multi-failure collection --- *)

exception Boom of int

let test_pool_collects_all_failures () =
  match
    Domain_pool.run_collect ~workers:4 (fun i ->
        if i = 1 || i = 3 then raise (Boom i) else i)
  with
  | Ok _ -> Alcotest.fail "expected failures"
  | Error failures ->
    Alcotest.(check (list int)) "both raisers reported, in worker order" [ 1; 3 ]
      (List.map (fun (f : Domain_pool.failure) -> f.index) failures);
    List.iter
      (fun (f : Domain_pool.failure) ->
        match f.error with
        | Boom i -> Alcotest.(check int) "each failure carries its own exn" f.index i
        | e -> Alcotest.fail (Printexc.to_string e))
      failures

let test_pool_run_compat () =
  (match Domain_pool.run ~workers:3 (fun i -> i * i) with
  | [| 0; 1; 4 |] -> ()
  | _ -> Alcotest.fail "results in worker order");
  match Domain_pool.run ~workers:3 (fun i -> if i >= 1 then raise (Boom i) else i) with
  | _ -> Alcotest.fail "expected raise"
  | exception Boom i -> Alcotest.(check int) "first failure by index re-raised" 1 i

(* --- engine-level structured errors --- *)

let tc_arc n = List.init (n - 1) (fun i -> [ i; i + 1 ])

let strategies = [ ("global", D.Coord.Global); ("ssp", D.Coord.Ssp 2); ("dws", D.Coord.dws) ]

(* An induced crash in worker 1 must terminate the whole pool under every
   strategy — peers poisoned, never hung — and the structured error must
   name the true origin, not a poisoned peer.  The config-level timeout
   doubles as the test-level hang guard. *)
let test_crash_containment () =
  List.iter
    (fun (name, strategy) ->
      let config =
        {
          D.default_config with
          workers = 2;
          strategy;
          coord = { D.Coord.default_config with timeout = Some 30. };
          fault =
            Some
              {
                D.Fault.off with
                seed = 5;
                crash_prob = 1.0;
                crash_sites = [ D.Fault.Loop ];
                crash_workers = [ 1 ];
              };
        }
      in
      let prepared = Result.get_ok (D.prepare D.Queries.tc.source) in
      match D.try_run prepared ~edb:[ ("arc", D.tuples (tc_arc 400)) ] ~config () with
      | Ok _ -> Alcotest.fail (name ^ ": crash must not be swallowed")
      | Error (D.Engine_error.Worker_crashed { worker; error; others; _ }) ->
        Alcotest.(check int) (name ^ ": faulting worker named") 1 worker;
        Alcotest.(check int) (name ^ ": no poisoned bystanders reported") 0
          (List.length others);
        (match error with
        | D.Fault.Injected { worker = 1; _ } -> ()
        | e -> Alcotest.fail (name ^ ": wrong exn " ^ Printexc.to_string e))
      | Error e -> Alcotest.fail (name ^ ": wrong error " ^ D.Engine_error.to_string e))
    strategies

let test_deadline_cancels () =
  let config =
    {
      D.default_config with
      workers = 2;
      coord = { D.Coord.default_config with timeout = Some 0.02 };
    }
  in
  let prepared = Result.get_ok (D.prepare D.Queries.tc.source) in
  (* a closure big enough that it cannot finish in 20 ms *)
  let arc = List.init 6000 (fun i -> [ i; (i + 1) mod 3000 ]) in
  match D.try_run prepared ~edb:[ ("arc", D.tuples arc) ] ~config () with
  | Error (D.Engine_error.Cancelled Cancel.Deadline) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ D.Engine_error.to_string e)
  | Ok _ -> Alcotest.fail "a 20ms deadline cannot complete this closure"

let test_external_cancel () =
  let token = Cancel.create () in
  let config =
    {
      D.default_config with
      workers = 2;
      coord = { D.Coord.default_config with cancel = Some token; timeout = Some 30. };
    }
  in
  let prepared = Result.get_ok (D.prepare D.Queries.tc.source) in
  let arc = List.init 6000 (fun i -> [ i; (i + 1) mod 3000 ]) in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.02;
        ignore (Cancel.cancel token Cancel.User))
  in
  let r = D.try_run prepared ~edb:[ ("arc", D.tuples arc) ] ~config () in
  Domain.join canceller;
  match r with
  | Error (D.Engine_error.Cancelled Cancel.User) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ D.Engine_error.to_string e)
  | Ok _ -> Alcotest.fail "closure finished before the cancel could land (enlarge input)"

(* The acceptance scenario: a deliberately livelocked run (one worker
   held mid-loop while its peers still hold undelivered work) must be
   detected by the watchdog within the configured window and returned as
   [Stalled] with a populated state snapshot — not hang. *)
let test_watchdog_detects_livelock () =
  List.iter
    (fun (name, strategy) ->
      let config =
        {
          D.default_config with
          workers = 2;
          strategy;
          coord =
            {
              D.Coord.default_config with
              stall_window = Some 0.15;
              stall_poll = 0.02;
              timeout = Some 30.;
            };
          fault = Some { D.Fault.off with seed = 1; stall_worker = Some 1; stall_after = 2 };
        }
      in
      let prepared = Result.get_ok (D.prepare D.Queries.tc.source) in
      let t0 = Clock.now () in
      match D.try_run prepared ~edb:[ ("arc", D.tuples (tc_arc 600)) ] ~config () with
      | Error (D.Engine_error.Stalled diag) ->
        Alcotest.(check bool) (name ^ ": detected within a few windows") true
          (Clock.now () -. t0 < 10.);
        Alcotest.(check int) (name ^ ": snapshot covers every worker") 2
          (Array.length diag.stall_workers);
        Alcotest.(check (float 0.001)) (name ^ ": window recorded") 0.15 diag.stall_window;
        Alcotest.(check bool) (name ^ ": snapshot renders") true
          (String.length (Format.asprintf "%a" D.Engine_error.pp_diagnostic diag) > 0)
      | Error e -> Alcotest.fail (name ^ ": wrong error " ^ D.Engine_error.to_string e)
      | Ok _ -> Alcotest.fail (name ^ ": stalled worker cannot reach the fixpoint"))
    strategies

(* Faults disabled must change nothing: guarded runs still reach the
   exact fixpoint. *)
let test_guarded_run_correct () =
  let config =
    {
      D.default_config with
      workers = 2;
      coord =
        { D.Coord.default_config with timeout = Some 60.; stall_window = Some 10. };
    }
  in
  let prepared = Result.get_ok (D.prepare D.Queries.tc.source) in
  let edb = [ ("arc", D.tuples (tc_arc 50)) ] in
  match D.try_run prepared ~edb ~config () with
  | Ok r -> Alcotest.(check int) "tc of a 50-chain" (49 * 50 / 2) (D.relation_count r "tc")
  | Error e -> Alcotest.fail (D.Engine_error.to_string e)

let () =
  Alcotest.run "fault"
    [
      ( "cancel",
        [
          Alcotest.test_case "token basics" `Quick test_cancel_token;
          Alcotest.test_case "deadline" `Quick test_cancel_deadline;
        ] );
      ( "fault",
        [
          Alcotest.test_case "deterministic schedules" `Quick test_fault_deterministic;
          Alcotest.test_case "budget and worker filter" `Quick test_fault_budget_and_filter;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires on stall" `Quick test_watchdog_fires_on_stall;
          Alcotest.test_case "quiet under progress" `Quick test_watchdog_quiet_under_progress;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "collects all failures" `Quick test_pool_collects_all_failures;
          Alcotest.test_case "run compat" `Quick test_pool_run_compat;
        ] );
      ( "engine",
        [
          Alcotest.test_case "crash containment, every strategy" `Quick test_crash_containment;
          Alcotest.test_case "deadline cancels" `Quick test_deadline_cancels;
          Alcotest.test_case "external cancel" `Quick test_external_cancel;
          Alcotest.test_case "watchdog detects livelock" `Slow test_watchdog_detects_livelock;
          Alcotest.test_case "guards off the hot path" `Quick test_guarded_run_correct;
        ] );
    ]
