(* Randomized fault-schedule stress suite.

   Runs TC and CC under seeded fault injection (induced crashes and
   extra delays at random loop/flush/merge/quiescence points), across
   worker counts {2, 4} and all three coordination strategies, and
   asserts the only two legal outcomes:

   - a correct fixpoint, tuple-for-tuple equal to the naive boxed-AST
     oracle, or
   - a clean structured error (Worker_crashed / Cancelled / Stalled),

   never a hang and never a raw exception.  Every run is guarded by a
   config-level timeout and an armed watchdog, so a reintroduced
   quiescence livelock surfaces as a structured failure here instead of
   freezing the suite; CI additionally wraps the whole executable in a
   hard wall-clock limit.

   The base seed comes from FAULT_SEED (default 1), so the CI matrix can
   sweep schedules without touching the code. *)

module D = Dcdatalog
module Rng = Dcd_util.Rng

let base_seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> (try int_of_string s with _ -> 1)
  | None -> 1

let rand = Rng.create (0xFA51 + base_seed)

let random_graph ~vertices ~edges =
  List.init edges (fun _ -> (Rng.int rand vertices, Rng.int rand vertices))

let oracle ?params src edb out =
  let rows =
    D.Naive.run ?params (D.Parser.parse_program src)
      ~edb:(List.map (fun (n, r) -> (n, List.map Array.of_list r)) edb)
  in
  match List.assoc_opt out rows with
  | Some l -> List.sort compare (List.map Array.to_list l)
  | None -> []

type outcome =
  | Fixpoint_ok
  | Clean_error of string
  | Wrong_fixpoint
  | Raw_exception of string

let run_case ~seed ~workers ~strategy ~crash_prob ~delay_prob ?(steal = true)
    ?(checkpoint_every = 0) ?(max_recoveries = 0) ?params src edb out expected =
  let config =
    {
      D.default_config with
      workers;
      strategy;
      steal;
      checkpoint_every;
      max_recoveries;
      coord =
        {
          D.Coord.default_config with
          timeout = Some 60.;
          stall_window = Some 10.;
          stall_poll = 0.02;
        };
      fault =
        Some
          {
            D.Fault.off with
            seed;
            crash_prob;
            delay_prob;
            delay_max = 0.0008;
            max_crashes = 2;
          };
    }
  in
  match D.query ?params ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb) with
  | Ok r -> if D.relation r out = expected then Fixpoint_ok else Wrong_fixpoint
  | Error msg -> Raw_exception ("front end: " ^ msg)
  | exception D.Engine_error.Error e -> Clean_error (D.Engine_error.to_string e)
  | exception e -> Raw_exception (Printexc.to_string e)

let () =
  Printexc.record_backtrace true;
  let arc = random_graph ~vertices:80 ~edges:240 in
  let arc2 = List.map (fun (a, b) -> [ a; b ]) arc in
  let sym = List.concat_map (fun (a, b) -> [ [ a; b ]; [ b; a ] ]) arc in
  let cases =
    [
      ("tc", D.Queries.tc.source, None, [ ("arc", arc2) ], "tc");
      ("cc", D.Queries.cc.source, None, [ ("arc", sym) ], "cc");
    ]
  in
  let strategies = [ ("global", D.Coord.Global); ("ssp2", D.Coord.Ssp 2); ("dws", D.Coord.dws) ]
  in
  let total = ref 0
  and ok = ref 0
  and clean = ref 0
  and failed = ref [] in
  List.iter
    (fun (qname, src, params, edb, out) ->
      let expected = oracle ?params src edb out in
      assert (expected <> []);
      List.iter
        (fun (sname, strategy) ->
          List.iter
            (fun workers ->
              for round = 0 to 2 do
                let seed = (base_seed * 1000) + (round * 100) + (workers * 10) in
                let crash_prob = if round = 0 then 0. else 0.02 in
                let delay_prob = 0.2 in
                incr total;
                let label =
                  Printf.sprintf "%s/%s w=%d seed=%d crash=%.2f" qname sname workers seed
                    crash_prob
                in
                match
                  run_case ~seed ~workers ~strategy ~crash_prob ~delay_prob ?params src edb
                    out expected
                with
                | Fixpoint_ok -> incr ok
                | Clean_error msg ->
                  incr clean;
                  if crash_prob = 0. then begin
                    (* no crashes scheduled: delays alone must never
                       abort the run *)
                    Printf.printf "FAIL %s: unexpected error %s\n" label msg;
                    failed := label :: !failed
                  end
                  else Printf.printf "  %s -> clean error (%s)\n" label msg
                | Wrong_fixpoint ->
                  Printf.printf "FAIL %s: fixpoint differs from oracle\n" label;
                  failed := label :: !failed
                | Raw_exception msg ->
                  Printf.printf "FAIL %s: raw exception escaped: %s\n" label msg;
                  failed := label :: !failed
              done)
            [ 2; 4 ])
        strategies)
    cases;
  (* Recovery rounds: the same kind of seeded crash schedules, but with
     checkpointing and recovery armed — now a crash may silently consume
     a retry, and EVERY run must reach the exact oracle fixpoint.  A
     clean error here is a failure: the whole point of recovery is that
     crashes stop being terminal. *)
  let tc_src = D.Queries.tc.source in
  let tc_edb = [ ("arc", arc2) ] in
  let tc_expected = oracle tc_src tc_edb "tc" in
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun steal ->
          List.iter
            (fun workers ->
              let seed = (base_seed * 1000) + (workers * 10) + if steal then 1 else 2 in
              incr total;
              let label =
                Printf.sprintf "tc-recover/%s w=%d steal=%b seed=%d" sname workers steal seed
              in
              match
                run_case ~seed ~workers ~strategy ~crash_prob:0.05 ~delay_prob:0.1 ~steal
                  ~checkpoint_every:2 ~max_recoveries:3 tc_src tc_edb "tc" tc_expected
              with
              | Fixpoint_ok -> incr ok
              | Clean_error msg ->
                Printf.printf "FAIL %s: error despite recovery: %s\n" label msg;
                failed := label :: !failed
              | Wrong_fixpoint ->
                Printf.printf "FAIL %s: recovered fixpoint differs from oracle\n" label;
                failed := label :: !failed
              | Raw_exception msg ->
                Printf.printf "FAIL %s: raw exception escaped: %s\n" label msg;
                failed := label :: !failed)
            [ 1; 4 ])
        [ true; false ])
    strategies;
  Printf.printf "fault-sched: %d runs, %d exact fixpoints, %d clean errors, %d failures\n"
    !total !ok !clean (List.length !failed);
  if !failed <> [] then begin
    List.iter (fun l -> Printf.printf "  failed: %s\n" l) !failed;
    exit 1
  end;
  (* the delay-only rounds all completed; make sure the suite really
     exercised the happy path too *)
  if !ok = 0 then begin
    print_endline "fault-sched: no run ever reached a fixpoint — injection too aggressive";
    exit 1
  end
