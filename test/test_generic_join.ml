(* The worst-case-optimal generic-join path: plan selection, exact
   results on known graphs, and differential testing against the naive
   AST interpreter across strategies, worker counts and stealing —
   mirroring the shape of test_differential/test_stress. *)

module D = Dcdatalog
module Ph = D.Physical

let compile ?generic_join src =
  let info = Result.get_ok (D.Analysis.analyze (D.Parser.parse_program src)) in
  Result.get_ok (Ph.compile ?generic_join ~params:[] info)

let all_rules (plan : Ph.t) =
  List.concat_map (fun sp -> sp.Ph.init_rules @ sp.Ph.delta_rules) plan.Ph.strata

let gj_rules plan = List.filter (fun (cr : Ph.compiled_rule) -> cr.Ph.gj <> None) (all_rules plan)

(* --- plan selection --- *)

let test_triangle_auto () =
  let plan = compile D.Queries.triangle.source in
  match gj_rules plan with
  | [ cr ] ->
    (* the first arc atom is the scan; the other two become tries
       intersected on the one unbound variable Z *)
    let g = Option.get cr.Ph.gj in
    Alcotest.(check int) "two trie atoms" 2 (Array.length g.Ph.gj_atoms);
    Alcotest.(check int) "one level (Z)" 1 (Array.length g.Ph.gj_levels);
    Alcotest.(check (array pass)) "binary steps emptied" [||] cr.Ph.steps;
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      "explain mentions generic join" true
      (contains (Ph.explain plan) "generic join")
  | l -> Alcotest.failf "expected exactly one generic-join rule, got %d" (List.length l)

let test_triangle_off () =
  let plan = compile ~generic_join:`Off D.Queries.triangle.source in
  Alcotest.(check int) "no gj rules under `Off" 0 (List.length (gj_rules plan))

let test_sg_auto_binary () =
  (* SG's bodies are chains (alpha-acyclic): Auto keeps the binary path *)
  let plan = compile D.Queries.sg.source in
  Alcotest.(check int) "sg stays binary under `Auto" 0 (List.length (gj_rules plan))

let test_sg_forced () =
  let plan = compile ~generic_join:`Force D.Queries.sg.source in
  (* the init rule arc(P,X),arc(P,Y) and every delta rule whose non-scan
     atoms are all base qualify; at least one rule must flip *)
  Alcotest.(check bool) "forcing flips sg rules" true (List.length (gj_rules plan) > 0)

let test_tc_force_ineligible () =
  (* tc's delta rule has a single non-scan atom: generic join needs a
     multiway intersection, so even `Force leaves it binary *)
  let plan = compile ~generic_join:`Force D.Queries.tc.source in
  Alcotest.(check int) "tc unaffected by `Force" 0 (List.length (gj_rules plan))

let test_sorted_indexes_needed () =
  let plan = compile D.Queries.triangle.source in
  let need = Ph.sorted_indexes_needed plan in
  Alcotest.(check bool) "triangle needs arc tries" true (List.length need > 0);
  List.iter (fun (p, _) -> Alcotest.(check string) "all on arc" "arc" p) need;
  let plan_off = compile ~generic_join:`Off D.Queries.triangle.source in
  Alcotest.(check int) "no tries when off" 0
    (List.length (Ph.sorted_indexes_needed plan_off))

(* --- exact results on known graphs --- *)

let sym edges = List.concat_map (fun (a, b) -> [ [ a; b ]; [ b; a ] ]) edges

let run_query ?generic_join ?(config = D.default_config) src edb out =
  let edb = List.map (fun (n, rows) -> (n, D.tuples rows)) edb in
  match D.query ?generic_join ~config src ~edb with
  | Ok r -> D.relation r out
  | Error e -> Alcotest.fail e

let test_triangle_k4 () =
  (* K4 has exactly 4 triangles *)
  let k4 = sym [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let got = run_query D.Queries.triangle.source [ ("arc", k4) ] "tri" in
  Alcotest.(check (list (list int)))
    "K4 triangles"
    [ [ 0; 1; 2 ]; [ 0; 1; 3 ]; [ 0; 2; 3 ]; [ 1; 2; 3 ] ]
    got

let test_triangle_no_triangle () =
  let square = sym [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let got = run_query D.Queries.triangle.source [ ("arc", square) ] "tri" in
  Alcotest.(check (list (list int))) "C4 has no triangle" [] got

let test_sg_forced_matches_binary () =
  let edges = [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 4 ]; [ 3; 5 ]; [ 4; 6 ] ] in
  let binary = run_query ~generic_join:`Off D.Queries.sg.source [ ("arc", edges) ] "sg" in
  let generic =
    run_query ~generic_join:`Force D.Queries.sg.source [ ("arc", edges) ] "sg"
  in
  Alcotest.(check (list (list int))) "forced generic = binary" binary generic;
  Alcotest.(check bool) "nonempty" true (binary <> [])

(* --- differential: engine vs naive oracle --- *)

let edges_gen =
  QCheck.Gen.(
    let* n = int_range 2 14 in
    let* m = int_range 0 40 in
    list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))))

(* steal on/off x {Global, Ssp 2, Dws} x workers {1, 4}, per the stress
   convention; small morsels so multi-worker runs actually steal *)
let config_gen =
  QCheck.Gen.(
    let* workers = oneofl [ 1; 4 ] in
    let* strat = int_range 0 2 in
    let strategy =
      match strat with 0 -> D.Coord.Global | 1 -> D.Coord.Ssp 2 | _ -> D.Coord.dws
    in
    let* steal = bool in
    return { D.default_config with workers; strategy; steal; morsel_tuples = 8 })

let run_naive ?params src edb =
  D.Naive.run ?params (D.Parser.parse_program src)
    ~edb:(List.map (fun (n, rows) -> (n, List.map Array.of_list rows)) edb)

let agree ?generic_join ~output src edb config =
  let got =
    match
      D.query ?generic_join ~config src
        ~edb:(List.map (fun (n, rows) -> (n, D.tuples rows)) edb)
    with
    | Ok r -> D.relation r output
    | Error e -> Alcotest.fail e
  in
  let want =
    match List.assoc_opt output (run_naive src edb) with
    | Some rows -> List.sort compare (List.map Array.to_list rows)
    | None -> []
  in
  got = want

let make_prop name gen prop = QCheck.Test.make ~name ~count:60 (QCheck.make gen) prop

let prop_triangle =
  make_prop "triangle (auto generic join): engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      let edb = [ ("arc", sym edges) ] in
      agree ~output:"tri" D.Queries.triangle.source edb config)

let prop_sg_forced =
  make_prop "sg (forced generic join): engine = naive"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      (* SG blows up on dense graphs; thin the input *)
      let edges = List.filteri (fun i _ -> i < 16) edges in
      let edb = [ ("arc", List.map (fun (a, b) -> [ a; b ]) edges) ] in
      agree ~generic_join:`Force ~output:"sg" D.Queries.sg.source edb config)

let prop_sg_forced_eq_binary =
  make_prop "sg: forced generic = binary plan"
    QCheck.Gen.(pair edges_gen config_gen)
    (fun (edges, config) ->
      let edges = List.filteri (fun i _ -> i < 16) edges in
      let edb = [ ("arc", List.map (fun (a, b) -> [ a; b ]) edges) ] in
      run_query ~generic_join:`Force ~config D.Queries.sg.source edb "sg"
      = run_query ~generic_join:`Off ~config D.Queries.sg.source edb "sg")

let () =
  Alcotest.run "generic_join"
    [
      ( "plan",
        [
          Alcotest.test_case "triangle auto-selects gj" `Quick test_triangle_auto;
          Alcotest.test_case "off disables gj" `Quick test_triangle_off;
          Alcotest.test_case "sg stays binary on auto" `Quick test_sg_auto_binary;
          Alcotest.test_case "force flips sg" `Quick test_sg_forced;
          Alcotest.test_case "tc ineligible under force" `Quick test_tc_force_ineligible;
          Alcotest.test_case "sorted_indexes_needed" `Quick test_sorted_indexes_needed;
        ] );
      ( "exact",
        [
          Alcotest.test_case "K4 triangles" `Quick test_triangle_k4;
          Alcotest.test_case "C4 no triangles" `Quick test_triangle_no_triangle;
          Alcotest.test_case "sg forced = binary" `Quick test_sg_forced_matches_binary;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_triangle; prop_sg_forced; prop_sg_forced_eq_binary ] );
    ]
