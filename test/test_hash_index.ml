module Hi = Dcd_storage.Hash_index
module Vec = Dcd_util.Vec

let test_single_column () =
  let idx = Hi.create ~key_cols:[| 0 |] () in
  Hi.add idx [| 1; 10 |];
  Hi.add idx [| 1; 11 |];
  Hi.add idx [| 2; 20 |];
  Alcotest.(check int) "total" 3 (Hi.length idx);
  Alcotest.(check int) "distinct keys" 2 (Hi.distinct_keys idx);
  let got = ref [] in
  Hi.iter_matches idx [| 1 |] (fun data off -> got := data.(off + 1) :: !got);
  Alcotest.(check (list int)) "bucket content" [ 10; 11 ] (List.sort compare !got);
  Alcotest.(check int) "count" 2 (Hi.count_matches idx [| 1 |]);
  Alcotest.(check int) "missing key" 0 (Hi.count_matches idx [| 9 |])

let test_multi_column () =
  let idx = Hi.create ~key_cols:[| 2; 0 |] () in
  Hi.add idx [| 1; 5; 3 |];
  Hi.add idx [| 1; 6; 3 |];
  Hi.add idx [| 2; 5; 3 |];
  (* key is (col2, col0) = (3, 1) for the first two *)
  Alcotest.(check int) "composite key groups" 2 (Hi.count_matches idx [| 3; 1 |]);
  Alcotest.(check int) "other group" 1 (Hi.count_matches idx [| 3; 2 |])

let test_of_tuples () =
  let tuples = Vec.of_list [ [| 1; 2 |]; [| 1; 3 |]; [| 4; 5 |] ] in
  let idx = Hi.of_tuples ~key_cols:[| 0 |] tuples in
  Alcotest.(check int) "built from vec" 3 (Hi.length idx);
  Alcotest.(check int) "lookup" 2 (Hi.count_matches idx [| 1 |])

let test_duplicates_kept () =
  let idx = Hi.create ~key_cols:[| 0 |] () in
  Hi.add idx [| 1; 1 |];
  Hi.add idx [| 1; 1 |];
  Alcotest.(check int) "index keeps duplicates" 2 (Hi.count_matches idx [| 1 |])

let prop_matches_filter =
  QCheck.Test.make ~name:"iter_matches = linear filter" ~count:100
    QCheck.(pair (list (pair (int_range 0 10) (int_range 0 10))) (int_range 0 10))
    (fun (rows, probe) ->
      let idx = Hi.create ~key_cols:[| 0 |] () in
      List.iter (fun (a, b) -> Hi.add idx [| a; b |]) rows;
      let got = ref 0 in
      Hi.iter_matches idx [| probe |] (fun _ _ -> incr got);
      !got = List.length (List.filter (fun (a, _) -> a = probe) rows))

let () =
  Alcotest.run "hash_index"
    [
      ( "unit",
        [
          Alcotest.test_case "single column" `Quick test_single_column;
          Alcotest.test_case "multi column" `Quick test_multi_column;
          Alcotest.test_case "of_tuples" `Quick test_of_tuples;
          Alcotest.test_case "duplicates kept" `Quick test_duplicates_kept;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_matches_filter ]);
    ]
