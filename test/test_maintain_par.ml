(* Parallel incremental maintenance (compiled kernels + pool-resident
   delta joins + writer coalescing): differential grids that pit the
   parallel maintenance path against both the sequential interpreted
   path (maintain_workers = 1, the ablation baseline) and a cold
   naive-oracle recompute; a concurrency property for writer
   coalescing; and the poisoned-session regression. *)

module D = Dcdatalog
module Fault = Dcd_concurrent.Fault

let reachstats_src =
  "reach(Y) <- src(Y).\n\
   reach(Y) <- reach(X), arc(X, Y).\n\
   deg(X, count<Y>) <- reach(X), arc(X, Y).\n\
   busiest(max<N>) <- deg(X, N)."

let prepare src =
  match D.prepare src with
  | Ok p -> p
  | Error e -> failwith e

let rows_of_tuples ts = List.sort compare (List.map Array.to_list ts)

let oracle_fixpoint src base outputs =
  let oracle = D.Naive.run (D.Parser.parse_program src) ~edb:base in
  List.map
    (fun out ->
      match List.assoc_opt out oracle with
      | Some rows -> (out, rows_of_tuples rows)
      | None -> (out, []))
    outputs

let session_fixpoint session outputs =
  List.map (fun out -> (out, rows_of_tuples (snd (D.Session.scan session out)))) outputs

(* Mixed batches big enough to push the delta arenas past the morsel
   threshold, so the grid actually exercises pool rounds rather than the
   inline compiled path alone.  Deletes are biased toward tuples known
   present so DRed overdeletion cascades fire. *)
let gen_batches rng ~preds ~nodes ~batches ~ops =
  let present = Hashtbl.create 256 in
  List.init batches (fun _ ->
      List.init ops (fun _ ->
          let pred, arity = List.nth preds (Dcd_util.Rng.int rng (List.length preds)) in
          let tup () = Array.init arity (fun _ -> Dcd_util.Rng.int rng nodes) in
          if Dcd_util.Rng.int rng 3 = 0 && Hashtbl.length present > 0 then begin
            let victim =
              Hashtbl.fold (fun k () acc -> if acc = None then Some k else acc) present None
            in
            match victim with
            | Some ((p, row) as k) ->
              Hashtbl.remove present k;
              D.Maintain.Delete (p, Array.of_list row)
            | None -> D.Maintain.Insert (pred, tup ())
          end
          else begin
            let t = tup () in
            Hashtbl.replace present (pred, Array.to_list t) ();
            D.Maintain.Insert (pred, t)
          end))

(* One cell: the parallel session and the sequential ablation session
   apply the same schedule; after every batch both fixpoints must agree
   with each other and with the oracle's cold recompute. *)
let run_cell ~src ~outputs ~initial ~batches ~config =
  let prepared = prepare src in
  let edb () = List.map (fun (n, rows) -> (n, D.Vec.of_list rows)) initial in
  let par = D.open_session prepared ~edb:(edb ()) ~config () in
  let seq =
    D.open_session prepared ~edb:(edb ())
      ~config:{ config with D.maintain_workers = 1 }
      ()
  in
  let base = Hashtbl.create 256 in
  List.iter
    (fun (n, rows) -> List.iter (fun r -> Hashtbl.replace base (n, Array.to_list r) ()) rows)
    initial;
  let fail = ref None in
  List.iteri
    (fun bi batch ->
      if !fail = None then begin
        List.iter
          (fun u ->
            match u with
            | D.Maintain.Insert (n, t) -> Hashtbl.replace base (n, Array.to_list t) ()
            | D.Maintain.Delete (n, t) -> Hashtbl.remove base (n, Array.to_list t))
          batch;
        ignore (D.Session.apply_batch par batch);
        ignore (D.Session.apply_batch seq batch);
        let got_par = session_fixpoint par outputs in
        let got_seq = session_fixpoint seq outputs in
        if got_par <> got_seq then
          fail := Some (Printf.sprintf "batch %d: parallel diverged from sequential" bi)
        else begin
          let cur_base =
            List.map
              (fun (n, _) ->
                ( n,
                  Hashtbl.fold
                    (fun (n', row) () acc -> if n' = n then Array.of_list row :: acc else acc)
                    base [] ))
              initial
          in
          if got_par <> oracle_fixpoint src cur_base outputs then
            fail := Some (Printf.sprintf "batch %d: parallel diverged from cold oracle" bi)
        end
      end)
    batches;
  D.Session.close par;
  D.Session.close seq;
  match !fail with
  | Some msg -> failwith msg
  | None -> ()

let grid_cells =
  List.concat_map
    (fun strategy ->
      List.concat_map
        (fun steal -> List.map (fun mw -> (strategy, steal, mw)) [ 1; 4 ])
        [ false; true ])
    [ D.Coord.Global; D.Coord.Ssp 2; D.Coord.dws ]

let mk_edges rng n m = List.init m (fun _ -> [| Dcd_util.Rng.int rng n; Dcd_util.Rng.int rng n |])

let diff_case name src outputs initial preds seed () =
  let rng = Dcd_util.Rng.create seed in
  List.iter
    (fun (strategy, steal, mw) ->
      let batches = gen_batches rng ~preds ~nodes:40 ~batches:2 ~ops:320 in
      try
        run_cell ~src ~outputs ~initial ~batches
          ~config:{ D.default_config with strategy; steal; workers = 4; maintain_workers = mw }
      with Failure msg ->
        Alcotest.failf "%s: %s (strategy=%s steal=%b maintain_workers=%d)" name msg
          (D.Coord.to_string strategy) steal mw)
    grid_cells

let tc_grid () =
  let rng = Dcd_util.Rng.create 31 in
  diff_case "tc" D.Queries.tc.source [ "tc" ] [ ("arc", mk_edges rng 40 80) ] [ ("arc", 2) ] 211 ()

let cc_grid () =
  let rng = Dcd_util.Rng.create 37 in
  diff_case "cc" D.Queries.cc.source [ "cc2"; "cc" ]
    [ ("arc", mk_edges rng 40 80) ]
    [ ("arc", 2) ]
    223 ()

let reachstats_grid () =
  let rng = Dcd_util.Rng.create 41 in
  diff_case "reachstats" reachstats_src
    [ "reach"; "deg"; "busiest" ]
    [ ("arc", mk_edges rng 40 80); ("src", [ [| 0 |]; [| 3 |] ]) ]
    [ ("arc", 2); ("src", 1) ]
    227 ()

(* --- writer coalescing: concurrent callers = serialized application --- *)

(* Each caller domain owns a disjoint node range, so the final base
   state is independent of the interleaving; the concurrent callers
   (some of which will coalesce into shared maintenance rounds) must
   leave the session at exactly the oracle fixpoint of that final
   base.  Every caller must also get a well-formed report back. *)
let prop_coalesced_callers =
  QCheck.Test.make ~name:"concurrent coalesced apply_batch = serialized" ~count:8
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 1 1_000_000 in
         let* callers = int_range 2 4 in
         return (seed, callers)))
    (fun (seed, callers) ->
      let rng = Dcd_util.Rng.create seed in
      let span = 12 in
      let initial = [ ("arc", mk_edges rng span 20) ] in
      let prepared = prepare D.Queries.tc.source in
      let edb = List.map (fun (n, rows) -> (n, D.Vec.of_list rows)) initial in
      let s =
        D.open_session prepared ~edb ~config:{ D.default_config with workers = 2 } ()
      in
      (* per-caller batch over its own disjoint node range (offset past
         the initial span so deletes can't collide across callers) *)
      let batches =
        List.init callers (fun c ->
            let lo = span + (c * span) in
            let rng = Dcd_util.Rng.create (seed + c) in
            List.init 40 (fun _ ->
                let t = [| lo + Dcd_util.Rng.int rng span; lo + Dcd_util.Rng.int rng span |] in
                if Dcd_util.Rng.int rng 4 = 0 then D.Maintain.Delete ("arc", t)
                else D.Maintain.Insert ("arc", t)))
      in
      let domains =
        List.map (fun b -> Domain.spawn (fun () -> D.Session.apply_batch s b)) batches
      in
      let reports = List.map Domain.join domains in
      let base = Hashtbl.create 256 in
      List.iter
        (fun (n, rows) ->
          List.iter (fun r -> Hashtbl.replace base (n, Array.to_list r) ()) rows)
        initial;
      List.iter
        (List.iter (fun u ->
             match u with
             | D.Maintain.Insert (n, t) -> Hashtbl.replace base (n, Array.to_list t) ()
             | D.Maintain.Delete (n, t) -> Hashtbl.remove base (n, Array.to_list t)))
        batches;
      let cur_base =
        [ ( "arc",
            Hashtbl.fold
              (fun (n, row) () acc -> if n = "arc" then Array.of_list row :: acc else acc)
              base [] ) ]
      in
      let want = oracle_fixpoint D.Queries.tc.source cur_base [ "tc" ] in
      let got = session_fixpoint s [ "tc" ] in
      let m = (D.Session.stats s).D.Run_stats.maintenance in
      (* batches + coalesced always accounts for every caller, however
         the rounds happened to merge *)
      let accounted = m.D.Run_stats.batches + m.D.Run_stats.coalesced in
      D.Session.close s;
      got = want
      && accounted = callers
      && List.for_all (fun r -> r.D.Maintain.br_base_inserted >= 0) reports)

(* --- poisoned session: the original error is re-raised verbatim --- *)

let test_poison_original_error () =
  let prepared = prepare D.Queries.tc.source in
  let rng = Dcd_util.Rng.create 53 in
  let edb = [ ("arc", D.Vec.of_list (mk_edges rng 64 64)) ] in
  let s =
    D.open_session prepared ~edb
      ~config:
        {
          D.default_config with
          workers = 2;
          maintain_workers = 2;
          (* the Maintain site only fires inside a parallel maintenance
             round, so the initial fixpoint run is untouched *)
          fault =
            Some
              {
                Fault.off with
                seed = 5;
                crash_prob = 1.0;
                crash_sites = [ Fault.Maintain ];
                max_crashes = 1;
              };
        }
      ()
  in
  (* a batch big enough to cross the morsel threshold and trigger a
     pool round, where the injected crash fires *)
  let big =
    List.init 400 (fun i -> D.Maintain.Insert ("arc", [| 100 + (i mod 37); 100 + (i / 37) |]))
  in
  let e1 =
    match D.Session.apply_batch s big with
    | _ -> Alcotest.fail "expected the injected crash to escape"
    | exception (D.Engine_error.Error (D.Engine_error.Worker_crashed _) as e) -> e
    | exception e -> Alcotest.failf "wrong poison: %s" (Printexc.to_string e)
  in
  Alcotest.(check bool) "session reports closed/poisoned" true (D.Session.closed s);
  (* reads keep serving the last published snapshot *)
  let _, present = D.Session.lookup s "tc" [| 100; 100 |] in
  Alcotest.(check bool) "poisoned batch never published" false present;
  (* the regression: a later write must re-raise the ORIGINAL poisoning
     error, not a generic "session poisoned" Invalid_argument *)
  (match D.Session.apply_batch s [ D.Maintain.Insert ("arc", [| 1; 2 |]) ] with
  | _ -> Alcotest.fail "poisoned session accepted a write"
  | exception e2 ->
    Alcotest.(check bool) "same exception value re-raised" true (e1 == e2));
  D.Session.close s

let () =
  Alcotest.run "maintain_par"
    [
      ( "parallel vs sequential vs oracle",
        [
          Alcotest.test_case "tc grid" `Slow tc_grid;
          Alcotest.test_case "cc grid" `Slow cc_grid;
          Alcotest.test_case "reachstats grid" `Slow reachstats_grid;
        ] );
      ("writer coalescing", [ QCheck_alcotest.to_alcotest prop_coalesced_callers ]);
      ( "poisoning",
        [ Alcotest.test_case "original error re-raised" `Quick test_poison_original_error ] );
    ]
