(* Multi-stratum regression: a recursive stratum feeding two dependent
   aggregate strata, pinned per-stratum fixpoint sizes under all three
   strategies, checked against the naive AST interpreter.  This is the
   end-to-end guard for the persistent worker runtime: every stratum of
   the pipeline — recursive or not — evaluates on the same domain
   pool. *)

module D = Dcdatalog

let rows = Alcotest.(list (list int))

(* programs/reachstats.dl *)
let src =
  "reach(Y) <- src(Y).\n\
   reach(Y) <- reach(X), arc(X, Y).\n\
   deg(X, count<Y>) <- reach(X), arc(X, Y).\n\
   busiest(max<N>) <- deg(X, N)."

(* 0 reaches 1..6; node 9 is unreachable, so its out-edges never count.
   Out-degrees over reachable nodes: 0->2, 1->2, 2->1, 3->1, 4->1. *)
let edb =
  [
    ("src", [ [ 0 ] ]);
    ( "arc",
      [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 1; 4 ]; [ 2; 4 ]; [ 3; 5 ]; [ 4; 6 ]; [ 9; 0 ] ] );
  ]

let reach_expected = List.init 7 (fun i -> [ i ])
let deg_expected = [ [ 0; 2 ]; [ 1; 2 ]; [ 2; 1 ]; [ 3; 1 ]; [ 4; 1 ] ]
let busiest_expected = [ [ 2 ] ]

let run ~config =
  match D.query ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let strategies = [ ("global", D.Coord.Global); ("ssp2", D.Coord.Ssp 2); ("dws", D.Coord.dws) ]

let stratum_sizes (stats : D.Run_stats.t) =
  (* relation cardinalities are pinned via the relations themselves; the
     stats only need to show one stratum entry per plan stratum *)
  List.length stats.strata

let test_pinned_fixpoints_everywhere () =
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun workers ->
          let label = Printf.sprintf "%s/w%d" sname workers in
          let r = run ~config:{ D.default_config with strategy; workers } in
          Alcotest.check rows ("reach " ^ label) reach_expected (D.relation r "reach");
          Alcotest.check rows ("deg " ^ label) deg_expected (D.relation r "deg");
          Alcotest.check rows ("busiest " ^ label) busiest_expected (D.relation r "busiest");
          Alcotest.(check int) ("strata " ^ label) 3 (stratum_sizes r.stats))
        [ 1; 3 ])
    strategies

let test_agrees_with_naive_oracle () =
  let oracle =
    D.Naive.run (D.Parser.parse_program src)
      ~edb:(List.map (fun (n, r) -> (n, List.map Array.of_list r)) edb)
  in
  let want out =
    match List.assoc_opt out oracle with
    | Some rows -> List.sort compare (List.map Array.to_list rows)
    | None -> []
  in
  let r = run ~config:{ D.default_config with workers = 3 } in
  List.iter
    (fun out -> Alcotest.check rows ("oracle " ^ out) (want out) (D.relation r out))
    [ "reach"; "deg"; "busiest" ]

let test_stratum_time_breakdown_populated () =
  let r = run ~config:{ D.default_config with workers = 2 } in
  List.iter
    (fun (s : D.Run_stats.stratum) ->
      Alcotest.(check bool)
        ("non-negative phases: " ^ String.concat "," s.preds)
        true
        (s.setup >= 0. && s.evaluate >= 0. && s.materialize >= 0.);
      Alcotest.(check bool)
        ("phases bounded by wall: " ^ String.concat "," s.preds)
        true
        (s.setup +. s.evaluate +. s.materialize <= s.wall +. 1e-3))
    r.stats.strata

let test_program_file_matches () =
  (* keep programs/reachstats.dl in sync with the inlined source *)
  let path =
    (* cwd is _build/default/test under [dune runtest], the repo root
       under [dune exec] *)
    List.find Sys.file_exists [ "../programs/reachstats.dl"; "programs/reachstats.dl" ]
  in
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let stripped =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '%')
    |> String.concat "\n"
  in
  Alcotest.(check string) "program file in sync" src stripped

let () =
  Alcotest.run "multi_stratum"
    [
      ( "reachstats",
        [
          Alcotest.test_case "pinned fixpoints, all strategies" `Quick
            test_pinned_fixpoints_everywhere;
          Alcotest.test_case "naive oracle agreement" `Quick test_agrees_with_naive_oracle;
          Alcotest.test_case "stratum time breakdown" `Quick
            test_stratum_time_breakdown_populated;
          Alcotest.test_case "program file in sync" `Quick test_program_file_matches;
        ] );
    ]
