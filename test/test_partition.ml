module P = Dcd_storage.Partition
module Vec = Dcd_util.Vec

let test_range () =
  let h = P.create ~workers:7 in
  Alcotest.(check int) "workers" 7 (P.workers h);
  for k = 0 to 9999 do
    let w = P.of_key h k in
    if w < 0 || w >= 7 then Alcotest.fail "owner out of range"
  done

let test_stable () =
  let h = P.create ~workers:4 in
  Alcotest.(check int) "same key same owner" (P.of_key h 12345) (P.of_key h 12345)

let test_tuple_vs_key_consistency () =
  (* a single-column tuple route must agree with itself across relations *)
  let h = P.create ~workers:8 in
  for v = 0 to 999 do
    let a = P.of_tuple h ~cols:[| 0 |] [| v; 77 |] in
    let b = P.of_tuple h ~cols:[| 0 |] [| v; 123456 |] in
    if a <> b then Alcotest.fail "owner must depend only on key columns"
  done

let test_balance () =
  let h = P.create ~workers:8 in
  let counts = Array.make 8 0 in
  for k = 0 to 79_999 do
    let w = P.of_key h k in
    counts.(w) <- counts.(w) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 15% of even" true (abs (c - 10_000) < 1_500))
    counts

(* The avalanche finalizer must spread structured key streams evenly:
   a chi-square-style bound on bucket counts, for sequential keys and
   for strided ones (vertex ids scaled by a constant — the stream a
   weak multiplicative mix folds onto few buckets). *)
let test_mixing () =
  let workers = 8 in
  let h = P.create ~workers in
  let check_stream name keys =
    let n = List.length keys in
    let counts = Array.make workers 0 in
    List.iter
      (fun k ->
        let w = P.of_key h k in
        counts.(w) <- counts.(w) + 1)
      keys;
    let expected = float_of_int n /. float_of_int workers in
    let chi2 =
      Array.fold_left
        (fun acc c ->
          let d = float_of_int c -. expected in
          acc +. (d *. d /. expected))
        0. counts
    in
    (* 7 degrees of freedom: the 99.9% quantile is ~24.3; a generous 40
       still rejects any real clustering (a stuck bucket scores in the
       thousands) *)
    if chi2 > 40. then
      Alcotest.fail (Printf.sprintf "%s stream clusters: chi2 = %.1f" name chi2)
  in
  check_stream "sequential" (List.init 40_000 Fun.id);
  List.iter
    (fun stride ->
      check_stream
        (Printf.sprintf "stride %d" stride)
        (List.init 40_000 (fun i -> i * stride)))
    [ 2; 8; 64; 1024; 4096 ]

let test_split () =
  let h = P.create ~workers:3 in
  let batch = Vec.of_list (List.init 100 (fun i -> [| i; i * 2 |])) in
  let parts = P.split h batch ~cols:[| 0 |] in
  let total = Array.fold_left (fun acc p -> acc + Vec.length p) 0 parts in
  Alcotest.(check int) "no tuple lost" 100 total;
  Array.iteri
    (fun w part ->
      Vec.iter
        (fun t ->
          if P.of_tuple h ~cols:[| 0 |] t <> w then Alcotest.fail "tuple in wrong partition")
        part)
    parts

let test_single_worker () =
  let h = P.create ~workers:1 in
  Alcotest.(check int) "everything to worker 0" 0 (P.of_key h 42);
  Alcotest.(check int) "empty cols to worker 0" 0 (P.of_tuple h ~cols:[||] [| 1; 2 |]);
  Alcotest.check_raises "zero workers" (Invalid_argument "Partition.create") (fun () ->
      ignore (P.create ~workers:0))

let () =
  Alcotest.run "partition"
    [
      ( "unit",
        [
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "stable" `Quick test_stable;
          Alcotest.test_case "tuple/key consistency" `Quick test_tuple_vs_key_consistency;
          Alcotest.test_case "balance" `Quick test_balance;
          Alcotest.test_case "mixing" `Quick test_mixing;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "single worker" `Quick test_single_worker;
        ] );
    ]
