(* The persistent domain pool: job rounds reach every worker, crashes
   name their true origin and leave the pool usable, and a whole engine
   run spawns exactly [workers] domains (plus the watchdog when a run
   guard arms it) no matter how many strata it evaluates. *)

module Pool = Dcd_concurrent.Domain_pool
module D = Dcdatalog

let test_rounds_reach_all_workers () =
  let pool = Pool.create ~workers:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 4 (Pool.size pool);
      let hits = Array.make 4 0 in
      for _round = 1 to 5 do
        match Pool.submit pool (fun i -> hits.(i) <- hits.(i) + 1) with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "clean round reported failures"
      done;
      Alcotest.(check (array int)) "every worker ran every round" [| 5; 5; 5; 5 |] hits)

exception Boom of int

let test_crash_names_origin_and_pool_survives () =
  let pool = Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (match Pool.submit pool (fun i -> if i = 1 then raise (Boom 1)) with
      | Ok () -> Alcotest.fail "crashing round reported success"
      | Error [ f ] ->
        Alcotest.(check int) "origin worker" 1 f.Pool.index;
        Alcotest.(check bool) "origin exception" true (f.Pool.error = Boom 1)
      | Error fs ->
        Alcotest.fail (Printf.sprintf "expected 1 failure, got %d" (List.length fs)));
      (* two origins in one round, reported in index order *)
      (match Pool.submit pool (fun i -> if i <> 1 then raise (Boom i)) with
      | Error [ a; b ] ->
        Alcotest.(check (list int)) "both origins, index order" [ 0; 2 ]
          [ a.Pool.index; b.Pool.index ]
      | Ok () | Error _ -> Alcotest.fail "expected exactly the two crashed workers");
      (* the same domains still accept work after crashed rounds *)
      let sum = Atomic.make 0 in
      (match Pool.submit pool (fun i -> ignore (Atomic.fetch_and_add sum (i + 1))) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "pool unusable after crash");
      Alcotest.(check int) "post-crash round ran everywhere" 6 (Atomic.get sum))

let test_shutdown_idempotent_and_final () =
  let pool = Pool.create ~workers:2 in
  (match Pool.submit pool (fun _ -> ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clean round failed");
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.submit pool (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown must be rejected"

(* reachability feeding two further strata: 3 strata on one pool *)
let multi_stratum_src =
  "reach(Y) <- src(Y).\n\
   reach(Y) <- reach(X), e(X, Y).\n\
   deg(X, count<Y>) <- reach(X), e(X, Y).\n\
   busiest(max<N>) <- deg(X, N)."

let multi_stratum_edb =
  [ ("src", [ [ 0 ] ]); ("e", [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2; 3 ]; [ 3; 4 ] ]) ]

let run_query ~config =
  match D.query ~config multi_stratum_src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) multi_stratum_edb) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_engine_spawns_exactly_workers () =
  let config = { D.default_config with workers = 3 } in
  let before = Pool.total_spawned () in
  let r = run_query ~config in
  let after = Pool.total_spawned () in
  Alcotest.(check bool) "several strata" true (List.length r.stats.strata >= 3);
  Alcotest.(check int) "workers domains for the whole run" 3 (after - before)

let test_engine_spawns_workers_plus_watchdog () =
  let config =
    {
      D.default_config with
      workers = 2;
      coord = { D.Coord.default_config with stall_window = Some 30.0 };
    }
  in
  let before = Pool.total_spawned () in
  ignore (run_query ~config);
  let after = Pool.total_spawned () in
  Alcotest.(check int) "workers + guardian" 3 (after - before)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "rounds reach all workers" `Quick test_rounds_reach_all_workers;
          Alcotest.test_case "crash origin + survival" `Quick
            test_crash_names_origin_and_pool_survives;
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_final;
        ] );
      ( "spawn accounting",
        [
          Alcotest.test_case "exactly workers per run" `Quick test_engine_spawns_exactly_workers;
          Alcotest.test_case "plus watchdog when armed" `Quick
            test_engine_spawns_workers_plus_watchdog;
        ] );
    ]
