open Dcd_datalog
module Rs = Dcd_engine.Rec_store

let tuple_list = Alcotest.(list (list int))

let matches store key =
  let out = ref [] in
  Rs.iter_matches store ~key (fun data off ->
      out := Array.to_list (Array.sub data off (Array.length data - off)) :: !out);
  List.sort compare !out

let all_opts = [ ("optimized", Rs.default_opts); ("unoptimized", Rs.unoptimized_opts) ]

let for_all_opts f () = List.iter (fun (_, opts) -> f opts) all_opts

let test_set_store opts =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts () in
  Alcotest.(check bool) "fresh tuple" true (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] <> None);
  Alcotest.(check bool) "duplicate absorbed" true
    (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] = None);
  ignore (Rs.merge s ~tuple:[| 1; 3 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 9 |] ~contributor:[||]);
  Alcotest.(check int) "length" 3 (Rs.length s);
  Alcotest.check tuple_list "route matches" [ [ 1; 2 ]; [ 1; 3 ] ] (matches s [| 1 |])

let test_set_store_route1 opts =
  (* route on the SECOND column: permutation must still return canonical tuples *)
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 1 |] ~opts () in
  ignore (Rs.merge s ~tuple:[| 1; 7 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 7 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 3; 8 |] ~contributor:[||]);
  Alcotest.check tuple_list "match by col 1, canonical order" [ [ 1; 7 ]; [ 2; 7 ] ]
    (matches s [| 7 |])

let test_agg_min opts =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Min)) ~route:[| 0 |] ~opts () in
  (match Rs.merge s ~tuple:[| 1; 5 |] ~contributor:[||] with
  | Some t -> Alcotest.(check (list int)) "first" [ 1; 5 ] (Array.to_list t)
  | None -> Alcotest.fail "first merge must change");
  Alcotest.(check bool) "worse absorbed" true (Rs.merge s ~tuple:[| 1; 9 |] ~contributor:[||] = None);
  (match Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] with
  | Some t -> Alcotest.(check (list int)) "improved delta carries new value" [ 1; 2 ] (Array.to_list t)
  | None -> Alcotest.fail "improvement must be emitted");
  Alcotest.check tuple_list "lookup sees the aggregate" [ [ 1; 2 ] ] (matches s [| 1 |])

let test_agg_value_not_in_route opts =
  (* APSP-style: path(A, B, min<D>), route by B (col 1), group (A, B) *)
  let s = Rs.create ~arity:3 ~agg:(Some (2, Ast.Min)) ~route:[| 1 |] ~opts () in
  ignore (Rs.merge s ~tuple:[| 1; 5; 10 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 5; 20 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 1; 6; 30 |] ~contributor:[||]);
  Alcotest.check tuple_list "prefix by routed group col"
    [ [ 1; 5; 10 ]; [ 2; 5; 20 ] ]
    (matches s [| 5 |]);
  (* improving one group does not disturb the other *)
  ignore (Rs.merge s ~tuple:[| 2; 5; 15 |] ~contributor:[||]);
  Alcotest.check tuple_list "after improvement" [ [ 1; 5; 10 ]; [ 2; 5; 15 ] ] (matches s [| 5 |])

let test_agg_count opts =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Count)) ~route:[| 0 |] ~opts () in
  (match Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |] with
  | Some t -> Alcotest.(check (list int)) "count 1" [ 7; 1 ] (Array.to_list t)
  | None -> Alcotest.fail "first contributor");
  Alcotest.(check bool) "repeat contributor" true
    (Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |] = None);
  match Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 101 |] with
  | Some t -> Alcotest.(check (list int)) "count 2" [ 7; 2 ] (Array.to_list t)
  | None -> Alcotest.fail "second contributor"

let test_cache_stats () =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:Rs.default_opts () in
  ignore (Rs.merge s ~tuple:[| 1; 1 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 1; 1 |] ~contributor:[||]);
  (match Rs.cache_stats s with
  | Some (hits, _) -> Alcotest.(check bool) "cache hit recorded" true (hits >= 1)
  | None -> Alcotest.fail "cache should be on by default");
  let s2 = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:Rs.unoptimized_opts () in
  Alcotest.(check bool) "no cache when off" true (Rs.cache_stats s2 = None)

let test_optimized_and_unoptimized_agree =
  QCheck.Test.make ~name:"store contents identical across opts" ~count:60
    QCheck.(list (pair (int_range 0 8) (int_range 0 30)))
    (fun candidates ->
      let mk opts = Rs.create ~arity:2 ~agg:(Some (1, Ast.Min)) ~route:[| 0 |] ~opts () in
      let a = mk Rs.default_opts and b = mk Rs.unoptimized_opts in
      List.iter
        (fun (g, v) ->
          let ra = Rs.merge a ~tuple:[| g; v |] ~contributor:[||] in
          let rb = Rs.merge b ~tuple:[| g; v |] ~contributor:[||] in
          assert ((ra = None) = (rb = None)))
        candidates;
      let dump s =
        let out = ref [] in
        Rs.iter s (fun t -> out := Array.to_list t :: !out);
        List.sort compare !out
      in
      dump a = dump b)

let () =
  Alcotest.run "rec_store"
    [
      ( "unit",
        [
          Alcotest.test_case "set store" `Quick (for_all_opts test_set_store);
          Alcotest.test_case "set store route 1" `Quick (for_all_opts test_set_store_route1);
          Alcotest.test_case "agg min" `Quick (for_all_opts test_agg_min);
          Alcotest.test_case "agg route != prefix" `Quick (for_all_opts test_agg_value_not_in_route);
          Alcotest.test_case "agg count" `Quick (for_all_opts test_agg_count);
          Alcotest.test_case "cache stats" `Quick test_cache_stats;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest test_optimized_and_unoptimized_agree ]);
    ]
