open Dcd_datalog
module Rs = Dcd_engine.Rec_store

let tuple_list = Alcotest.(list (list int))

let matches store key =
  let out = ref [] in
  Rs.iter_matches store ~key (fun data off ->
      out := Array.to_list (Array.sub data off (Array.length data - off)) :: !out);
  List.sort compare !out

let all_opts = [ ("optimized", Rs.default_opts); ("unoptimized", Rs.unoptimized_opts) ]

let for_all_opts f () = List.iter (fun (_, opts) -> f opts) all_opts

let test_set_store opts =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts () in
  Alcotest.(check bool) "fresh tuple" true (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] <> None);
  Alcotest.(check bool) "duplicate absorbed" true
    (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] = None);
  ignore (Rs.merge s ~tuple:[| 1; 3 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 9 |] ~contributor:[||]);
  Alcotest.(check int) "length" 3 (Rs.length s);
  Alcotest.check tuple_list "route matches" [ [ 1; 2 ]; [ 1; 3 ] ] (matches s [| 1 |])

let test_set_store_route1 opts =
  (* route on the SECOND column: permutation must still return canonical tuples *)
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 1 |] ~opts () in
  ignore (Rs.merge s ~tuple:[| 1; 7 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 7 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 3; 8 |] ~contributor:[||]);
  Alcotest.check tuple_list "match by col 1, canonical order" [ [ 1; 7 ]; [ 2; 7 ] ]
    (matches s [| 7 |])

let test_agg_min opts =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Min)) ~route:[| 0 |] ~opts () in
  (match Rs.merge s ~tuple:[| 1; 5 |] ~contributor:[||] with
  | Some t -> Alcotest.(check (list int)) "first" [ 1; 5 ] (Array.to_list t)
  | None -> Alcotest.fail "first merge must change");
  Alcotest.(check bool) "worse absorbed" true (Rs.merge s ~tuple:[| 1; 9 |] ~contributor:[||] = None);
  (match Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] with
  | Some t -> Alcotest.(check (list int)) "improved delta carries new value" [ 1; 2 ] (Array.to_list t)
  | None -> Alcotest.fail "improvement must be emitted");
  Alcotest.check tuple_list "lookup sees the aggregate" [ [ 1; 2 ] ] (matches s [| 1 |])

let test_agg_value_not_in_route opts =
  (* APSP-style: path(A, B, min<D>), route by B (col 1), group (A, B) *)
  let s = Rs.create ~arity:3 ~agg:(Some (2, Ast.Min)) ~route:[| 1 |] ~opts () in
  ignore (Rs.merge s ~tuple:[| 1; 5; 10 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 2; 5; 20 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 1; 6; 30 |] ~contributor:[||]);
  Alcotest.check tuple_list "prefix by routed group col"
    [ [ 1; 5; 10 ]; [ 2; 5; 20 ] ]
    (matches s [| 5 |]);
  (* improving one group does not disturb the other *)
  ignore (Rs.merge s ~tuple:[| 2; 5; 15 |] ~contributor:[||]);
  Alcotest.check tuple_list "after improvement" [ [ 1; 5; 10 ]; [ 2; 5; 15 ] ] (matches s [| 5 |])

let test_agg_count opts =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Count)) ~route:[| 0 |] ~opts () in
  (match Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |] with
  | Some t -> Alcotest.(check (list int)) "count 1" [ 7; 1 ] (Array.to_list t)
  | None -> Alcotest.fail "first contributor");
  Alcotest.(check bool) "repeat contributor" true
    (Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |] = None);
  match Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 101 |] with
  | Some t -> Alcotest.(check (list int)) "count 2" [ 7; 2 ] (Array.to_list t)
  | None -> Alcotest.fail "second contributor"

let test_cache_stats () =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:Rs.default_opts () in
  ignore (Rs.merge s ~tuple:[| 1; 1 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 1; 1 |] ~contributor:[||]);
  (match Rs.cache_stats s with
  | Some (hits, _) -> Alcotest.(check bool) "cache hit recorded" true (hits >= 1)
  | None -> Alcotest.fail "cache should be on by default");
  let s2 = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:Rs.unoptimized_opts () in
  Alcotest.(check bool) "no cache when off" true (Rs.cache_stats s2 = None)

(* --- batch-sorted staging path ------------------------------------ *)

let dump s =
  let out = ref [] in
  Rs.iter s (fun t -> out := Array.to_list t :: !out);
  List.sort compare !out

let test_stage_and_merge_run opts =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts () in
  let stage tup =
    Rs.stage_slice s ~data:tup ~off:0 ~cdata:tup ~coff:0 ~clen:0
  in
  stage [| 3; 1 |];
  stage [| 1; 2 |];
  stage [| 3; 1 |];
  (* in-run duplicate *)
  stage [| 2; 9 |];
  Alcotest.(check int) "staged counts candidates" 4 (Rs.staged s);
  Alcotest.(check int) "index untouched before merge_run" 0 (Rs.length s);
  let fresh = ref [] in
  let merged, dups = Rs.merge_run s ~on_fresh:(fun t -> fresh := Array.to_list t :: !fresh) in
  Alcotest.(check int) "staged drained" 0 (Rs.staged s);
  Alcotest.(check int) "merged = unique candidates" 3 merged;
  Alcotest.(check int) "in-run duplicate dropped" 1 dups;
  Alcotest.check tuple_list "deltas in key order" [ [ 1; 2 ]; [ 2; 9 ]; [ 3; 1 ] ]
    (List.rev !fresh);
  (* a second run: cross-run duplicates absorbed, fresh tuples kept *)
  stage [| 1; 2 |];
  stage [| 4; 4 |];
  let fresh2 = ref [] in
  let merged2, _ = Rs.merge_run s ~on_fresh:(fun t -> fresh2 := Array.to_list t :: !fresh2) in
  Alcotest.(check bool) "cross-run duplicate absorbed" true (merged2 <= 2);
  Alcotest.check tuple_list "only the new tuple is a delta" [ [ 4; 4 ] ] !fresh2;
  Alcotest.check (Alcotest.list (Alcotest.list Alcotest.int)) "store contents"
    [ [ 1; 2 ]; [ 2; 9 ]; [ 3; 1 ]; [ 4; 4 ] ]
    (dump s)

(* Differential pinning of the batch path to the per-tuple path: the
   same candidate stream, split into the same drain-sized runs, must
   leave both stores identical and produce equivalent deltas.  The
   per-tuple path may emit several deltas for one aggregate group
   within a run (each monotone improvement); the batch path emits one
   delta per changed group carrying the run's final value — so the
   comparison keys deltas by group and keeps the last per run.  One
   sanctioned divergence: a Sum run whose contributions net to zero
   against an existing group makes the per-tuple path emit a cancelling
   delta pair (ending on the unchanged stored value) where the batch
   path emits nothing — the store states still agree, and skipping the
   no-op delta only removes spurious frontier work. *)
let merge_run_matches_per_tuple ~agg ~contrib name =
  let gen =
    QCheck.(
      pair
        (list (triple (int_range 0 8) (int_range 0 30) (int_range 0 3)))
        (list_of_size QCheck.Gen.(int_range 1 5) (int_range 1 40)))
  in
  QCheck.Test.make ~name ~count:80 gen (fun (candidates, chunk_sizes) ->
      let mk () = Rs.create ~arity:2 ~agg ~route:[| 0 |] ~opts:Rs.default_opts () in
      let a = mk () and b = mk () in
      let group_of tup =
        match agg with
        | None -> tup
        | Some (vpos, _) -> List.filteri (fun i _ -> i <> vpos) tup
      in
      (* split the stream into runs of the generated sizes, cycling;
         the shrinker may empty the size list, so keep a fallback *)
      let runs =
        let sizes = Array.of_list (if chunk_sizes = [] then [ 3 ] else chunk_sizes) in
        let rec go i si acc cur = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | c :: rest ->
            let cur = c :: cur in
            if List.length cur >= sizes.(si mod Array.length sizes) then
              go (i + 1) (si + 1) (List.rev cur :: acc) [] rest
            else go (i + 1) si acc cur rest
        in
        go 0 0 [] [] candidates
      in
      List.for_all
        (fun run ->
          (* path A: per-tuple, keeping the LAST delta per group *)
          let deltas_a = Hashtbl.create 8 in
          List.iter
            (fun (g, v, c) ->
              let tup = [| g; v |] in
              let contributor = if contrib then [| c |] else [||] in
              match Rs.merge a ~tuple:tup ~contributor with
              | Some d -> Hashtbl.replace deltas_a (group_of (Array.to_list d)) (Array.to_list d)
              | None -> ())
            run;
          (* path B: stage the whole run, then one merge_run *)
          let deltas_b = Hashtbl.create 8 in
          List.iter
            (fun (g, v, c) ->
              let tup = [| g; v |] in
              let cdata = if contrib then [| c |] else [||] in
              Rs.stage_slice b ~data:tup ~off:0 ~cdata ~coff:0
                ~clen:(Array.length cdata))
            run;
          let _ = Rs.merge_run b ~on_fresh:(fun d ->
              Hashtbl.replace deltas_b (group_of (Array.to_list d)) (Array.to_list d))
          in
          let db = dump b in
          let is_sum = match agg with Some (_, Ast.Sum) -> true | _ -> false in
          let b_matches_a =
            Hashtbl.fold
              (fun g d acc ->
                acc && (match Hashtbl.find_opt deltas_a g with Some d' -> d' = d | None -> false))
              deltas_b true
          in
          let a_only_are_sum_noops =
            Hashtbl.fold
              (fun g d acc ->
                acc && (Hashtbl.mem deltas_b g || (is_sum && List.mem d db)))
              deltas_a true
          in
          b_matches_a && a_only_are_sum_noops && dump a = db)
        runs)

let test_merge_run_set = merge_run_matches_per_tuple ~agg:None ~contrib:false "set: merge_run = per-tuple merges"
let test_merge_run_min = merge_run_matches_per_tuple ~agg:(Some (1, Ast.Min)) ~contrib:false "min: merge_run = per-tuple merges"
let test_merge_run_max = merge_run_matches_per_tuple ~agg:(Some (1, Ast.Max)) ~contrib:false "max: merge_run = per-tuple merges"
let test_merge_run_count = merge_run_matches_per_tuple ~agg:(Some (1, Ast.Count)) ~contrib:true "count: merge_run = per-tuple merges"
let test_merge_run_sum = merge_run_matches_per_tuple ~agg:(Some (1, Ast.Sum)) ~contrib:true "sum: merge_run = per-tuple merges"

let test_optimized_and_unoptimized_agree =
  QCheck.Test.make ~name:"store contents identical across opts" ~count:60
    QCheck.(list (pair (int_range 0 8) (int_range 0 30)))
    (fun candidates ->
      let mk opts = Rs.create ~arity:2 ~agg:(Some (1, Ast.Min)) ~route:[| 0 |] ~opts () in
      let a = mk Rs.default_opts and b = mk Rs.unoptimized_opts in
      List.iter
        (fun (g, v) ->
          let ra = Rs.merge a ~tuple:[| g; v |] ~contributor:[||] in
          let rb = Rs.merge b ~tuple:[| g; v |] ~contributor:[||] in
          assert ((ra = None) = (rb = None)))
        candidates;
      let dump s =
        let out = ref [] in
        Rs.iter s (fun t -> out := Array.to_list t :: !out);
        List.sort compare !out
      in
      dump a = dump b)

let () =
  Alcotest.run "rec_store"
    [
      ( "unit",
        [
          Alcotest.test_case "set store" `Quick (for_all_opts test_set_store);
          Alcotest.test_case "set store route 1" `Quick (for_all_opts test_set_store_route1);
          Alcotest.test_case "agg min" `Quick (for_all_opts test_agg_min);
          Alcotest.test_case "agg route != prefix" `Quick (for_all_opts test_agg_value_not_in_route);
          Alcotest.test_case "agg count" `Quick (for_all_opts test_agg_count);
          Alcotest.test_case "cache stats" `Quick test_cache_stats;
          Alcotest.test_case "stage + merge_run" `Quick (for_all_opts test_stage_and_merge_run);
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            test_optimized_and_unoptimized_agree; test_merge_run_set; test_merge_run_min;
            test_merge_run_max; test_merge_run_count; test_merge_run_sum;
          ] );
    ]
