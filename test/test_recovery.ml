(* Crash recovery: arena truncation, store snapshot/rollback (set and
   aggregate), domain replacement, and end-to-end recovered runs that
   must still produce the exact naive-oracle fixpoint.

   The end-to-end cases drive the full protocol: seeded crash
   injection kills workers mid-fixpoint, the orchestrator rolls every
   partition back to the last committed checkpoint epoch (or the
   stratum's base state), replaces the crashed domains, and re-runs —
   and the result must be tuple-for-tuple the oracle's. *)

module D = Dcdatalog
module Arena = Dcd_storage.Arena
module Rs = Dcd_engine.Rec_store
module Pool = Dcd_concurrent.Domain_pool
module Ast = Dcd_datalog.Ast

(* --- arena truncation --- *)

let test_arena_truncate () =
  let a = Arena.create ~arity:2 () in
  for i = 0 to 9 do
    ignore (Arena.push a [| i; i * 10 |])
  done;
  Arena.truncate a ~count:4;
  Alcotest.(check int) "rolled back to watermark" 4 (Arena.length a);
  Alcotest.(check (list int)) "surviving prefix intact" [ 3; 30 ]
    (Array.to_list (Arena.get a 3));
  (* the arena keeps working past a truncation *)
  ignore (Arena.push a [| 99; 98 |]);
  Alcotest.(check (list int)) "slot 4 reused" [ 99; 98 ] (Array.to_list (Arena.get a 4));
  Arena.truncate a ~count:0;
  Alcotest.(check int) "empty" 0 (Arena.length a);
  (match Arena.truncate a ~count:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "watermark past the end must be rejected");
  match Arena.truncate a ~count:(-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative watermark must be rejected"

(* --- set-store snapshot / rollback --- *)

let logged_opts = { Rs.default_opts with Rs.track_log = true }

let test_set_rollback () =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:logged_opts () in
  ignore (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 3; 4 |] ~contributor:[||]);
  let snap = Rs.snapshot s in
  ignore (Rs.merge s ~tuple:[| 5; 6 |] ~contributor:[||]);
  ignore (Rs.merge s ~tuple:[| 7; 8 |] ~contributor:[||]);
  Alcotest.(check int) "pre-rollback length" 4 (Rs.length s);
  Alcotest.(check int) "two tuples rolled back" 2 (Rs.rollback s snap);
  Alcotest.(check int) "post-rollback length" 2 (Rs.length s);
  (* a tuple that only existed after the cut must be fresh again: the
     index was rebuilt from the log prefix AND the existence cache was
     cleared (a stale cache entry would wrongly absorb it) *)
  Alcotest.(check bool) "rolled-back tuple re-derives" true
    (Rs.merge s ~tuple:[| 5; 6 |] ~contributor:[||] <> None);
  (* while surviving tuples still dedup *)
  Alcotest.(check bool) "pre-cut tuple still absorbed" true
    (Rs.merge s ~tuple:[| 1; 2 |] ~contributor:[||] = None);
  (* snapshots survive being restored from: roll back again *)
  Alcotest.(check int) "second rollback from the same snapshot" 1 (Rs.rollback s snap);
  Alcotest.(check int) "back to the cut" 2 (Rs.length s)

let test_set_snapshot_needs_log () =
  let s = Rs.create ~arity:2 ~agg:None ~route:[| 0 |] ~opts:Rs.default_opts () in
  match Rs.snapshot s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "snapshot without track_log must be rejected"

(* --- aggregate-store snapshot / rollback --- *)

let tuple_of = Array.to_list

let test_agg_count_rollback () =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Count)) ~route:[| 0 |] ~opts:logged_opts () in
  ignore (Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |]);
  let snap = Rs.snapshot s in
  ignore (Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 101 |]);
  ignore (Rs.merge s ~tuple:[| 8; 0 |] ~contributor:[| 100 |]);
  ignore (Rs.rollback s snap);
  Alcotest.(check int) "one group survives" 1 (Rs.length s);
  let got = ref [] in
  Rs.iter s (fun t -> got := tuple_of t :: !got);
  Alcotest.(check (list (list int))) "count rewound to 1" [ [ 7; 1 ] ] !got;
  (* contributor-dedup state was restored with the value: the pre-cut
     contributor must still be absorbed, a post-cut one re-counted *)
  Alcotest.(check bool) "pre-cut contributor still deduped" true
    (Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 100 |] = None);
  match Rs.merge s ~tuple:[| 7; 0 |] ~contributor:[| 101 |] with
  | Some t -> Alcotest.(check (list int)) "re-derived contributor counts again" [ 7; 2 ] (tuple_of t)
  | None -> Alcotest.fail "rolled-back contributor must count again"

let test_agg_sum_rollback () =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Sum)) ~route:[| 0 |] ~opts:logged_opts () in
  ignore (Rs.merge s ~tuple:[| 1; 10 |] ~contributor:[| 500 |]);
  let snap = Rs.snapshot s in
  ignore (Rs.merge s ~tuple:[| 1; 5 |] ~contributor:[| 501 |]);
  ignore (Rs.rollback s snap);
  let got = ref [] in
  Rs.iter s (fun t -> got := tuple_of t :: !got);
  Alcotest.(check (list (list int))) "sum rewound" [ [ 1; 10 ] ] !got;
  Alcotest.(check bool) "pre-cut partial restored (same contributor absorbed)" true
    (Rs.merge s ~tuple:[| 1; 10 |] ~contributor:[| 500 |] = None);
  match Rs.merge s ~tuple:[| 1; 5 |] ~contributor:[| 501 |] with
  | Some t -> Alcotest.(check (list int)) "re-derived sum" [ 1; 15 ] (tuple_of t)
  | None -> Alcotest.fail "rolled-back sum contribution must apply again"

let test_agg_min_rollback () =
  let s = Rs.create ~arity:2 ~agg:(Some (1, Ast.Min)) ~route:[| 0 |] ~opts:logged_opts () in
  ignore (Rs.merge s ~tuple:[| 1; 9 |] ~contributor:[||]);
  let snap = Rs.snapshot s in
  ignore (Rs.merge s ~tuple:[| 1; 3 |] ~contributor:[||]);
  ignore (Rs.rollback s snap);
  (* the improvement was rolled back, so it must improve again *)
  match Rs.merge s ~tuple:[| 1; 3 |] ~contributor:[||] with
  | Some t -> Alcotest.(check (list int)) "improvement re-derives" [ 1; 3 ] (tuple_of t)
  | None -> Alcotest.fail "rolled-back improvement must re-derive"

(* --- domain replacement --- *)

exception Boom

let test_pool_replace () =
  let pool = Pool.create ~workers:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (match Pool.submit pool (fun i -> if i = 1 then raise Boom) with
      | Error [ f ] -> Alcotest.(check int) "crash origin" 1 f.Pool.index
      | Ok () | Error _ -> Alcotest.fail "expected exactly worker 1 to crash");
      let before = Pool.total_spawned () in
      Pool.replace pool 1;
      Alcotest.(check int) "one replacement domain spawned" 1 (Pool.total_spawned () - before);
      (* the repaired pool runs clean rounds on every slot again *)
      let hits = Array.make 3 0 in
      (match Pool.submit pool (fun i -> hits.(i) <- hits.(i) + 1) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "repaired pool must run clean");
      Alcotest.(check (array int)) "all slots live" [| 1; 1; 1 |] hits;
      match Pool.replace pool 7 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "out-of-range replace must be rejected")

(* --- end-to-end recovered runs --- *)

let oracle src edb out =
  let rows =
    D.Naive.run (D.Parser.parse_program src)
      ~edb:(List.map (fun (n, r) -> (n, List.map Array.of_list r)) edb)
  in
  match List.assoc_opt out rows with
  | Some l -> List.sort compare (List.map Array.to_list l)
  | None -> []

let graph =
  let rand = Dcd_util.Rng.create 0xBEEF in
  List.init 220 (fun _ -> [ Dcd_util.Rng.int rand 70; Dcd_util.Rng.int rand 70 ])

let run_tc ~config =
  D.query ~config D.Queries.tc.D.Queries.source ~edb:[ ("arc", D.tuples graph) ]

let recovery_config ~strategy ~steal ~workers ~crash_prob ~max_crashes =
  {
    D.default_config with
    workers;
    strategy;
    steal;
    checkpoint_every = 2;
    max_recoveries = 5;
    coord =
      {
        D.Coord.default_config with
        timeout = Some 60.;
        stall_window = Some 10.;
        stall_poll = 0.02;
      };
    fault = Some { D.Fault.off with seed = 11; crash_prob; max_crashes };
  }

let test_recovered_run_matches_oracle () =
  let expected = oracle D.Queries.tc.D.Queries.source [ ("arc", graph) ] "tc" in
  let config =
    recovery_config ~strategy:D.Coord.dws ~steal:true ~workers:4 ~crash_prob:0.3 ~max_crashes:2
  in
  match run_tc ~config with
  | Ok r ->
    Alcotest.(check (list (list int)))
      "recovered fixpoint equals oracle" expected
      (List.sort compare (D.relation r "tc"));
    Alcotest.(check bool) "at least one recovery happened" true
      (r.D.Parallel.stats.D.Run_stats.recovery.D.Run_stats.recoveries >= 1)
  | Error e -> Alcotest.fail ("front end: " ^ e)

let test_crash_free_checkpoints_are_invisible () =
  let expected = oracle D.Queries.tc.D.Queries.source [ ("arc", graph) ] "tc" in
  List.iter
    (fun strategy ->
      let config =
        {
          (recovery_config ~strategy ~steal:true ~workers:4 ~crash_prob:0. ~max_crashes:0) with
          fault = None;
          checkpoint_every = 1;
        }
      in
      match run_tc ~config with
      | Ok r ->
        let rcv = r.D.Parallel.stats.D.Run_stats.recovery in
        Alcotest.(check (list (list int)))
          "checkpointed fixpoint equals oracle" expected
          (List.sort compare (D.relation r "tc"));
        Alcotest.(check int) "no recoveries on a crash-free run" 0 rcv.D.Run_stats.recoveries;
        Alcotest.(check bool) "epochs were cut" true (rcv.D.Run_stats.epochs_cut >= 1)
      | Error e -> Alcotest.fail ("front end: " ^ e))
    [ D.Coord.Global; D.Coord.Ssp 2; D.Coord.dws ]

let test_recovery_disabled_still_fails_fast () =
  let config =
    {
      (recovery_config ~strategy:D.Coord.dws ~steal:true ~workers:4 ~crash_prob:0.5
         ~max_crashes:1)
      with
      checkpoint_every = 0;
      max_recoveries = 0;
    }
  in
  match run_tc ~config with
  | exception D.Engine_error.Error (D.Engine_error.Worker_crashed _) -> ()
  | exception e -> Alcotest.fail ("expected Worker_crashed, got " ^ Printexc.to_string e)
  | Ok _ -> Alcotest.fail "crash schedule unexpectedly missed every site"
  | Error e -> Alcotest.fail ("front end: " ^ e)

(* multiple strata, including non-recursive aggregate strata that
   recover by restarting from their base snapshots *)
let multi_src =
  "reach(Y) <- src(Y).\n\
   reach(Y) <- reach(X), e(X, Y).\n\
   deg(X, count<Y>) <- reach(X), e(X, Y).\n\
   busiest(max<N>) <- deg(X, N)."

let multi_edb =
  let rand = Dcd_util.Rng.create 0xF00D in
  [
    ("src", [ [ 0 ] ]);
    ("e", List.init 200 (fun _ -> [ Dcd_util.Rng.int rand 60; Dcd_util.Rng.int rand 60 ]));
  ]

let test_recovered_multi_stratum () =
  let expected = oracle multi_src multi_edb "busiest" in
  let config =
    recovery_config ~strategy:D.Coord.Global ~steal:false ~workers:4 ~crash_prob:0.3
      ~max_crashes:2
  in
  match
    D.query ~config multi_src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) multi_edb)
  with
  | Ok r ->
    Alcotest.(check (list (list int)))
      "multi-stratum recovered fixpoint" expected
      (List.sort compare (D.relation r "busiest"))
  | Error e -> Alcotest.fail ("front end: " ^ e)

let () =
  Printexc.record_backtrace true;
  Alcotest.run "recovery"
    [
      ( "storage",
        [
          Alcotest.test_case "arena truncate" `Quick test_arena_truncate;
          Alcotest.test_case "set rollback" `Quick test_set_rollback;
          Alcotest.test_case "set snapshot needs log" `Quick test_set_snapshot_needs_log;
          Alcotest.test_case "agg count rollback" `Quick test_agg_count_rollback;
          Alcotest.test_case "agg sum rollback" `Quick test_agg_sum_rollback;
          Alcotest.test_case "agg min rollback" `Quick test_agg_min_rollback;
        ] );
      ("pool", [ Alcotest.test_case "replace crashed domain" `Quick test_pool_replace ]);
      ( "end-to-end",
        [
          Alcotest.test_case "recovered run matches oracle" `Quick
            test_recovered_run_matches_oracle;
          Alcotest.test_case "crash-free checkpoints invisible" `Quick
            test_crash_free_checkpoints_are_invisible;
          Alcotest.test_case "recovery disabled fails fast" `Quick
            test_recovery_disabled_still_fails_fast;
          Alcotest.test_case "recovered multi-stratum" `Quick test_recovered_multi_stratum;
        ] );
    ]
