module R = Dcd_storage.Relation
module Hi = Dcd_storage.Hash_index

let test_add_dedup_arity () =
  let r = R.create ~name:"edge" ~arity:2 () in
  Alcotest.(check string) "name" "edge" (R.name r);
  Alcotest.(check int) "arity" 2 (R.arity r);
  Alcotest.(check bool) "fresh" true (R.add r [| 1; 2 |]);
  Alcotest.(check bool) "duplicate" false (R.add r [| 1; 2 |]);
  Alcotest.(check int) "length" 1 (R.length r);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: arity mismatch on edge (got 3, want 2)") (fun () ->
      ignore (R.add r [| 1; 2; 3 |]))

let test_index_maintained_incrementally () =
  let r = R.create ~name:"e" ~arity:2 () in
  ignore (R.add r [| 1; 10 |]);
  let idx = R.ensure_index r ~key_cols:[| 0 |] in
  Alcotest.(check int) "index covers existing" 1 (Hi.count_matches idx [| 1 |]);
  ignore (R.add r [| 1; 11 |]);
  Alcotest.(check int) "index sees later adds" 2 (Hi.count_matches idx [| 1 |]);
  ignore (R.add r [| 1; 11 |]);
  Alcotest.(check int) "duplicates not double-indexed" 2 (Hi.count_matches idx [| 1 |])

let test_ensure_index_idempotent () =
  let r = R.create ~name:"e" ~arity:2 () in
  let a = R.ensure_index r ~key_cols:[| 1 |] in
  let b = R.ensure_index r ~key_cols:[| 1 |] in
  Alcotest.(check bool) "same physical index" true (a == b);
  Alcotest.(check int) "one index registered" 1 (List.length (R.indexes r));
  let c = R.ensure_index r ~key_cols:[| 0 |] in
  Alcotest.(check bool) "different cols different index" true (c != a);
  Alcotest.(check (option unit)) "find_index"
    (Some ())
    (Option.map (fun _ -> ()) (R.find_index r ~key_cols:[| 0 |]));
  Alcotest.(check bool) "find missing" true (R.find_index r ~key_cols:[| 0; 1 |] = None)

let test_iter_to_vec () =
  let r = R.create ~name:"x" ~arity:1 () in
  List.iter (fun i -> ignore (R.add r [| i |])) [ 3; 1; 2 ];
  let sum = ref 0 in
  R.iter (fun t -> sum := !sum + t.(0)) r;
  Alcotest.(check int) "iter covers all" 6 !sum;
  Alcotest.(check int) "to_vec size" 3 (Dcd_util.Vec.length (R.to_vec r))

let () =
  Alcotest.run "relation"
    [
      ( "unit",
        [
          Alcotest.test_case "add/dedup/arity" `Quick test_add_dedup_arity;
          Alcotest.test_case "incremental index" `Quick test_index_maintained_incrementally;
          Alcotest.test_case "ensure_index idempotent" `Quick test_ensure_index_idempotent;
          Alcotest.test_case "iter/to_vec" `Quick test_iter_to_vec;
        ] );
    ]
