(* The serving front door: protocol units over [handle], the
   concurrent-reads-during-batch consistency check (every response must
   match the complete fixpoint of the exact version it reports — never a
   torn mix), and a Unix-socket smoke test with live clients. *)

module D = Dcdatalog
module Serve = Dcd_serve.Serve

let prepare src =
  match D.prepare src with
  | Ok p -> p
  | Error e -> failwith e

let tc_session ?(config = { D.default_config with workers = 2 }) edges =
  let edb = [ ("arc", D.Vec.of_list (List.map (fun (a, b) -> [| a; b |]) edges)) ] in
  D.open_session (prepare D.Queries.tc.source) ~edb ~config ()

(* --- protocol units --- *)

let test_parse_atom () =
  Alcotest.(check (pair string (option (array int)))) "bare" ("tc", None)
    (Serve.parse_atom "tc");
  Alcotest.(check (pair string (option (array int)))) "args" ("arc", Some [| 1; 2 |])
    (Serve.parse_atom " arc( 1 , 2 ) ");
  Alcotest.(check (pair string (option (array int)))) "nullary" ("p", Some [||])
    (Serve.parse_atom "p()");
  List.iter
    (fun s ->
      match Serve.parse_atom s with
      | exception Serve.Bad _ -> ()
      | _ -> Alcotest.failf "parse_atom accepted %S" s)
    [ ""; "p(1"; "(1)"; "p(x)" ]

let expect_lines session req want =
  Alcotest.(check (list string)) req want (Serve.handle session req)

let test_handle () =
  let s = tc_session [ (1, 2); (2, 3) ] in
  expect_lines s "version" [ "ok version=0" ];
  expect_lines s "count tc" [ "ok version=0 count=3" ];
  expect_lines s "lookup tc(1,3)" [ "ok version=0 present=true" ];
  expect_lines s "scan tc(2)" [ "ok version=0 count=1"; "tc(2,3)" ];
  expect_lines s "update +arc(3,4)"
    [ "ok version=1 base=+1/-0 derived=+3/-0 overdeleted=0 rederived=0" ];
  expect_lines s "lookup tc(1,4)" [ "ok version=1 present=true" ];
  (* error paths come back as err lines, never exceptions *)
  expect_lines s "frobnicate" [ "err unknown command frobnicate (try: help)" ];
  expect_lines s "lookup nosuch(1)" [ "err Session: unknown relation nosuch" ];
  expect_lines s "update +tc(1,9)" [ "err Maintain: tc is derived, not a base relation" ];
  expect_lines s "lookup tc(1)" [ "err Session: arity mismatch for tc" ];
  expect_lines s "update +arc(x,y)" [ "err non-integer argument x in arc(x,y)" ];
  (match Serve.handle s "stats" with
  | first :: rest ->
    Alcotest.(check string) "stats header" (Printf.sprintf "ok lines=%d" (List.length rest)) first
  | [] -> Alcotest.fail "empty stats reply");
  (match Serve.handle s "predicates" with
  | [ header; l1; l2 ] ->
    Alcotest.(check string) "predicates header" "ok lines=2" header;
    Alcotest.(check (list string)) "predicates body" [ "arc/2 base"; "tc/2 derived" ] [ l1; l2 ]
  | other -> Alcotest.failf "unexpected predicates reply (%d lines)" (List.length other));
  D.Session.close s;
  expect_lines s "update +arc(7,8)" [ "err Session: closed" ]

(* --- concurrent reads during batch application --- *)

(* N reader threads hammer scan/count/lookup while the main thread
   applies a known schedule of update batches.  Every reply names the
   snapshot version it read; it must equal that version's full expected
   fixpoint.  A read served from a half-applied batch would mismatch
   whichever version it claims. *)
let test_concurrent_reads () =
  let initial = [ (1, 2); (2, 3); (3, 4); (4, 5); (10, 11) ] in
  let batches =
    [
      [ D.Maintain.Insert ("arc", [| 5; 6 |]); D.Maintain.Insert ("arc", [| 6; 7 |]) ];
      [ D.Maintain.Delete ("arc", [| 2; 3 |]) ];
      [ D.Maintain.Insert ("arc", [| 2; 3 |]); D.Maintain.Delete ("arc", [| 3; 4 |]) ];
      [ D.Maintain.Insert ("arc", [| 11; 12 |]); D.Maintain.Insert ("arc", [| 3; 4 |]) ];
      [ D.Maintain.Delete ("arc", [| 1; 2 |]) ];
      [ D.Maintain.Insert ("arc", [| 1; 2 |]) ];
    ]
  in
  (* expected tc fixpoint per version, from the naive oracle *)
  let base = Hashtbl.create 32 in
  List.iter (fun (a, b) -> Hashtbl.replace base [ a; b ] ()) initial;
  let oracle_now () =
    let arc = Hashtbl.fold (fun row () acc -> Array.of_list row :: acc) base [] in
    match List.assoc_opt "tc" (D.Naive.run (D.Parser.parse_program D.Queries.tc.source) ~edb:[ ("arc", arc) ]) with
    | Some rows -> List.sort compare (List.map Array.to_list rows)
    | None -> []
  in
  let expected = Array.make (List.length batches + 1) [] in
  expected.(0) <- oracle_now ();
  List.iteri
    (fun i batch ->
      List.iter
        (function
          | D.Maintain.Insert (_, t) -> Hashtbl.replace base (Array.to_list t) ()
          | D.Maintain.Delete (_, t) -> Hashtbl.remove base (Array.to_list t))
        batch;
      expected.(i + 1) <- oracle_now ())
    batches;
  let s = tc_session initial in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let reader () =
    while not (Atomic.get stop) do
      let ver, rows = D.Session.scan s "tc" in
      let got = List.sort compare (List.map Array.to_list rows) in
      if got <> expected.(ver) then Atomic.incr failures;
      let ver, n = D.Session.count s "tc" in
      if n <> List.length expected.(ver) then Atomic.incr failures;
      (* protocol-level read as well: version and count must agree *)
      (match Serve.handle s "count tc" with
      | [ line ] -> (
        match Scanf.sscanf_opt line "ok version=%d count=%d" (fun v c -> (v, c)) with
        | Some (v, c) when c = List.length expected.(v) -> ()
        | _ -> Atomic.incr failures)
      | _ -> Atomic.incr failures);
      Atomic.incr reads
    done
  in
  let readers = List.init 4 (fun _ -> Thread.create reader ()) in
  List.iter
    (fun batch ->
      ignore (D.Session.apply_batch s batch);
      (* let readers observe each published version a little *)
      Thread.yield ())
    batches;
  (* keep reading a moment at the final version *)
  Thread.delay 0.05;
  Atomic.set stop true;
  List.iter Thread.join readers;
  D.Session.close s;
  Alcotest.(check int) "no torn or stale-claimed reads" 0 (Atomic.get failures);
  Alcotest.(check bool) "readers actually overlapped the batches" true (Atomic.get reads > 0)

(* --- Unix-socket server --- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc (line ^ "\n");
  flush oc

let test_socket_server () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dcd_test_serve.sock" in
  let s = tc_session [ (1, 2); (2, 3) ] in
  let server = Serve.listen_unix s ~path in
  let fd1, ic1, oc1 = connect path in
  let fd2, ic2, oc2 = connect path in
  send oc1 "count tc";
  Alcotest.(check string) "client 1 count" "ok version=0 count=3" (input_line ic1);
  (* client 2 updates; client 1 then reads the new version *)
  send oc2 "update +arc(3,4)";
  Alcotest.(check string) "client 2 update"
    "ok version=1 base=+1/-0 derived=+3/-0 overdeleted=0 rederived=0" (input_line ic2);
  send oc1 "lookup tc(1,4)";
  Alcotest.(check string) "client 1 sees the update" "ok version=1 present=true"
    (input_line ic1);
  send oc1 "scan tc(1)";
  Alcotest.(check string) "scan header" "ok version=1 count=3" (input_line ic1);
  let l1 = input_line ic1 in
  let l2 = input_line ic1 in
  let l3 = input_line ic1 in
  Alcotest.(check (list string)) "scan body" [ "tc(1,2)"; "tc(1,3)"; "tc(1,4)" ] [ l1; l2; l3 ];
  send oc1 "quit";
  Alcotest.(check string) "quit ack" "ok bye" (input_line ic1);
  (try Unix.close fd1 with Unix.Unix_error _ -> ());
  (* stopping the server must disconnect the lingering client 2 *)
  Serve.stop server;
  Serve.stop server;
  (match input_line ic2 with
  | exception End_of_file -> ()
  | line -> Alcotest.failf "client 2 still connected, read %S" line);
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  D.Session.close s

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse_atom" `Quick test_parse_atom;
          Alcotest.test_case "handle round-trips" `Quick test_handle;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "reads stay consistent during batches" `Quick test_concurrent_reads ] );
      ( "socket",
        [ Alcotest.test_case "two clients over a Unix socket" `Quick test_socket_server ] );
    ]
