(* The resident serving session: lifecycle, snapshot versioning, and the
   incremental-maintenance differential — randomized insert/delete batch
   schedules whose post-batch fixpoint must equal a cold naive-oracle
   recompute of the same base state, on every strategy x steal x worker
   cell the grid exercises. *)

module D = Dcdatalog

let reachstats_src =
  "reach(Y) <- src(Y).\n\
   reach(Y) <- reach(X), arc(X, Y).\n\
   deg(X, count<Y>) <- reach(X), arc(X, Y).\n\
   busiest(max<N>) <- deg(X, N)."

let prepare src =
  match D.prepare src with
  | Ok p -> p
  | Error e -> failwith e

let rows_of_tuples ts = List.sort compare (List.map Array.to_list ts)

let oracle_fixpoint src base outputs =
  let oracle = D.Naive.run (D.Parser.parse_program src) ~edb:base in
  List.map
    (fun out ->
      match List.assoc_opt out oracle with
      | Some rows -> (out, rows_of_tuples rows)
      | None -> (out, []))
    outputs

let session_fixpoint session outputs =
  List.map (fun out -> (out, rows_of_tuples (snd (D.Session.scan session out)))) outputs

(* --- lifecycle --- *)

let tc_edb edges = [ ("arc", D.Vec.of_list (List.map (fun (a, b) -> [| a; b |]) edges)) ]

let test_lifecycle () =
  let prepared = prepare D.Queries.tc.source in
  let s = D.open_session prepared ~edb:(tc_edb [ (1, 2); (2, 3) ]) () in
  Alcotest.(check int) "initial version" 0 (D.Session.version s);
  Alcotest.(check (pair int bool)) "1->3 derived" (0, true) (D.Session.lookup s "tc" [| 1; 3 |]);
  Alcotest.(check (pair int int)) "tc count" (0, 3) (D.Session.count s "tc");
  let report = D.Session.apply_batch s [ D.Maintain.Insert ("arc", [| 3; 4 |]) ] in
  Alcotest.(check int) "one base insert" 1 report.D.Maintain.br_base_inserted;
  Alcotest.(check int) "next version" 1 (D.Session.version s);
  Alcotest.(check (pair int bool)) "1->4 now derived" (1, true) (D.Session.lookup s "tc" [| 1; 4 |]);
  let report = D.Session.apply_batch s [ D.Maintain.Delete ("arc", [| 2; 3 |]) ] in
  Alcotest.(check int) "one base delete" 1 report.D.Maintain.br_base_deleted;
  Alcotest.(check (pair int bool)) "1->3 retracted" (2, false) (D.Session.lookup s "tc" [| 1; 3 |]);
  Alcotest.(check (pair int bool)) "1->2 survives" (2, true) (D.Session.lookup s "tc" [| 1; 2 |]);
  (* set semantics: re-inserting a present tuple and deleting an absent
     one is a no-op batch, and publishes a version with no changes *)
  let report =
    D.Session.apply_batch s
      [ D.Maintain.Insert ("arc", [| 1; 2 |]); D.Maintain.Delete ("arc", [| 9; 9 |]) ]
  in
  Alcotest.(check int) "no-op batch: nothing inserted" 0 report.D.Maintain.br_base_inserted;
  Alcotest.(check int) "no-op batch: nothing deleted" 0 report.D.Maintain.br_base_deleted;
  let m = (D.Session.stats s).D.Run_stats.maintenance in
  Alcotest.(check int) "three batches counted" 3 m.D.Run_stats.batches;
  Alcotest.(check bool) "maintenance time recorded" true (m.D.Run_stats.maintain_s >= 0.);
  D.Session.close s;
  D.Session.close s;
  Alcotest.check_raises "updates refused after close"
    (Invalid_argument "Session: closed") (fun () ->
      ignore (D.Session.apply_batch s [ D.Maintain.Insert ("arc", [| 5; 6 |]) ]))

let test_batch_validation () =
  let prepared = prepare D.Queries.tc.source in
  let s = D.open_session prepared ~edb:(tc_edb [ (1, 2) ]) () in
  let before = D.Session.version s in
  Alcotest.check_raises "derived target rejected"
    (Invalid_argument "Maintain: tc is derived, not a base relation") (fun () ->
      ignore (D.Session.apply_batch s [ D.Maintain.Insert ("tc", [| 1; 2 |]) ]));
  (* a rejected batch is validated before any mutation: no version was
     published and the session still accepts work *)
  Alcotest.(check int) "no version published" before (D.Session.version s);
  let _ = D.Session.apply_batch s [ D.Maintain.Insert ("arc", [| 2; 3 |]) ] in
  Alcotest.(check (pair int bool)) "still live" (before + 1, true)
    (D.Session.lookup s "tc" [| 1; 3 |]);
  D.Session.close s

let test_prefix_scan () =
  let prepared = prepare D.Queries.tc.source in
  let s = D.open_session prepared ~edb:(tc_edb [ (1, 2); (2, 3); (4, 5) ]) () in
  let _, rows = D.Session.scan s ~prefix:[| 1 |] "tc" in
  Alcotest.(check (list (list int))) "tc from 1" [ [ 1; 2 ]; [ 1; 3 ] ] (rows_of_tuples rows);
  (* the prefix access marks the relation: the next published version
     serves the same scan through a sorted index *)
  let _ = D.Session.apply_batch s [ D.Maintain.Insert ("arc", [| 3; 6 |]) ] in
  let _, rels = D.Session.snapshot s in
  let tc = List.assoc "tc" rels in
  Alcotest.(check bool) "sorted index built on republish" true
    (D.Relation.find_sorted_index tc ~cols:[| 0; 1 |] <> None);
  let _, rows = D.Session.scan s ~prefix:[| 1 |] "tc" in
  Alcotest.(check (list (list int)))
    "tc from 1 after insert" [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 6 ] ] (rows_of_tuples rows);
  D.Session.close s

(* --- differential: incremental vs cold oracle recompute --- *)

(* One schedule cell: open a session on the initial base state, then
   apply [batches]; after every batch the session fixpoint must equal
   the naive oracle's cold recompute of the current base state. *)
let run_schedule ~src ~params:_ ~outputs ~initial ~batches ~config =
  let prepared = prepare src in
  let edb = List.map (fun (n, rows) -> (n, D.Vec.of_list rows)) initial in
  let s = D.open_session prepared ~edb ~config () in
  let base = Hashtbl.create 64 in
  List.iter
    (fun (n, rows) -> List.iter (fun r -> Hashtbl.replace base (n, Array.to_list r) ()) rows)
    initial;
  let ok = ref true in
  let fail = ref "" in
  List.iteri
    (fun bi batch ->
      List.iter
        (fun u ->
          match u with
          | D.Maintain.Insert (n, t) -> Hashtbl.replace base (n, Array.to_list t) ()
          | D.Maintain.Delete (n, t) -> Hashtbl.remove base (n, Array.to_list t))
        batch;
      ignore (D.Session.apply_batch s batch);
      if !ok then begin
        let cur_base =
          List.map
            (fun (n, _) ->
              ( n,
                Hashtbl.fold
                  (fun (n', row) () acc -> if n' = n then Array.of_list row :: acc else acc)
                  base [] ))
            initial
        in
        let want = oracle_fixpoint src cur_base outputs in
        let got = session_fixpoint s outputs in
        if got <> want then begin
          ok := false;
          fail := Printf.sprintf "batch %d diverged" bi
        end
      end)
    batches;
  D.Session.close s;
  if not !ok then failwith !fail

(* deterministic mixed batches: inserts of random edges, deletes biased
   toward edges actually present *)
let gen_batches rng ~preds ~nodes ~batches ~ops =
  let present = Hashtbl.create 64 in
  List.init batches (fun _ ->
      List.init ops (fun _ ->
          let pred, arity = List.nth preds (Dcd_util.Rng.int rng (List.length preds)) in
          let tup () = Array.init arity (fun _ -> Dcd_util.Rng.int rng nodes) in
          if Dcd_util.Rng.int rng 3 = 0 && Hashtbl.length present > 0 then begin
            (* delete something that exists (first key the table yields) *)
            let victim = Hashtbl.fold (fun k () acc -> if acc = None then Some k else acc) present None in
            match victim with
            | Some ((p, row) as k) ->
              Hashtbl.remove present k;
              D.Maintain.Delete (p, Array.of_list row)
            | None -> D.Maintain.Insert (pred, tup ())
          end
          else begin
            let t = tup () in
            Hashtbl.replace present (pred, Array.to_list t) ();
            D.Maintain.Insert (pred, t)
          end))

let grid_cells =
  List.concat_map
    (fun strategy ->
      List.concat_map
        (fun steal ->
          List.map (fun workers -> (strategy, steal, workers)) [ 1; 4 ])
        [ false; true ])
    [ D.Coord.Global; D.Coord.Ssp 2; D.Coord.dws ]

let diff_case name src outputs initial_edges preds seed () =
  let rng = Dcd_util.Rng.create seed in
  List.iter
    (fun (strategy, steal, workers) ->
      let batches = gen_batches rng ~preds ~nodes:14 ~batches:4 ~ops:8 in
      let initial = initial_edges in
      try run_schedule ~src ~params:[] ~outputs ~initial ~batches ~config:{ D.default_config with strategy; steal; workers }
      with Failure msg ->
        Alcotest.failf "%s: %s (strategy=%s steal=%b workers=%d)" name msg
          (D.Coord.to_string strategy) steal workers)
    grid_cells

let mk_edges rng n m = List.init m (fun _ -> [| Dcd_util.Rng.int rng n; Dcd_util.Rng.int rng n |])

let tc_diff () =
  let rng = Dcd_util.Rng.create 11 in
  diff_case "tc" D.Queries.tc.source [ "tc" ]
    [ ("arc", mk_edges rng 14 25) ]
    [ ("arc", 2) ]
    101 ()

(* Non-linear recursion: two same-stratum atoms per instantiation (and
   duplicate-atom instantiations on self-loops) stress the support
   counting paths that the left-linear tc rule never reaches. *)
let ntc_diff () =
  let rng = Dcd_util.Rng.create 19 in
  diff_case "ntc" "ntc(X, Y) <- arc(X, Y).\nntc(X, Z) <- ntc(X, Y), ntc(Y, Z)." [ "ntc" ]
    [ ("arc", mk_edges rng 14 25) ]
    [ ("arc", 2) ]
    109 ()

let cc_diff () =
  let rng = Dcd_util.Rng.create 13 in
  diff_case "cc" D.Queries.cc.source [ "cc2"; "cc" ]
    [ ("arc", mk_edges rng 14 25) ]
    [ ("arc", 2) ]
    103 ()

let reachstats_diff () =
  let rng = Dcd_util.Rng.create 17 in
  diff_case "reachstats" reachstats_src
    [ "reach"; "deg"; "busiest" ]
    [ ("arc", mk_edges rng 14 25); ("src", [ [| 0 |]; [| 3 |] ]) ]
    [ ("arc", 2); ("src", 1) ]
    107 ()

(* QCheck: random schedules, random configs, TC only (the cheap cell) *)
let prop_random_schedule =
  QCheck.Test.make ~name:"random schedule: incremental = cold oracle" ~count:25
    (QCheck.make
       QCheck.Gen.(
         let* seed = int_range 1 1_000_000 in
         let* workers = int_range 1 4 in
         let* steal = bool in
         let* strat = int_range 0 2 in
         return (seed, workers, steal, strat)))
    (fun (seed, workers, steal, strat) ->
      let strategy =
        match strat with 0 -> D.Coord.Global | 1 -> D.Coord.Ssp 2 | _ -> D.Coord.dws
      in
      let rng = Dcd_util.Rng.create seed in
      let initial = [ ("arc", mk_edges rng 10 15) ] in
      let batches = gen_batches rng ~preds:[ ("arc", 2) ] ~nodes:10 ~batches:3 ~ops:6 in
      match
        run_schedule ~src:D.Queries.tc.source ~params:[] ~outputs:[ "tc" ] ~initial ~batches
          ~config:{ D.default_config with strategy; steal; workers }
      with
      | () -> true
      | exception Failure _ -> false)

let () =
  Alcotest.run "session"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "open/update/close" `Quick test_lifecycle;
          Alcotest.test_case "batch validation is atomic" `Quick test_batch_validation;
          Alcotest.test_case "prefix scan + sticky sorted index" `Quick test_prefix_scan;
        ] );
      ( "incremental vs cold oracle",
        [
          Alcotest.test_case "tc grid" `Slow tc_diff;
          Alcotest.test_case "non-linear tc grid" `Slow ntc_diff;
          Alcotest.test_case "cc grid" `Slow cc_diff;
          Alcotest.test_case "reachstats grid" `Slow reachstats_diff;
          QCheck_alcotest.to_alcotest prop_random_schedule;
        ] );
    ]
