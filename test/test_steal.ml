(* Differential stress for the morsel work-stealing layer.

   On skewed (zipf) inputs — the workload stealing exists for — the
   fixpoint must be tuple-for-tuple identical to the naive boxed-AST
   oracle with stealing {on, off} x {global, ssp:2, dws} x workers
   {1, 4}, with a tiny morsel size so scans really are split, published
   and stolen.  Every completed run must also balance its exchange
   books: total_sent = total_drained (exact termination counts stolen
   emissions like any others).

   A seeded fault round then crashes a thief at the [Steal] site —
   after the claim, before execution, the window that leaks a pending
   morsel — and requires either a correct fixpoint or a clean
   structured error: stealing must coexist with crash containment,
   never deadlock a victim's join. *)

module D = Dcdatalog
module Gen = Dcd_workload.Gen
module Graph = Dcd_workload.Graph
module Vec = Dcd_util.Vec

let oracle ?params src edb out =
  let rows =
    D.Naive.run ?params (D.Parser.parse_program src)
      ~edb:(List.map (fun (n, r) -> (n, List.map Array.of_list r)) edb)
  in
  match List.assoc_opt out rows with
  | Some l -> List.sort compare (List.map Array.to_list l)
  | None -> []

let zipf_graph = lazy (Gen.zipf ~seed:77 ~n:160 ~edges:1400 ())

let cases () =
  let g = Lazy.force zipf_graph in
  let arc2 = Vec.to_list (Vec.map (fun (u, v, _) -> [ u; v ]) (Graph.edges g)) in
  let warc = Vec.to_list (Vec.map (fun (u, v, w) -> [ u; v; w ]) (Graph.edges g)) in
  [
    ("tc", D.Queries.tc.source, None, [ ("arc", arc2) ], "tc");
    ("sssp", D.Queries.sssp.source, Some [ ("start", 1) ], [ ("warc", warc) ], "results");
  ]

let strategies = [ ("global", D.Coord.Global); ("ssp2", D.Coord.Ssp 2); ("dws", D.Coord.dws) ]

let config ~steal ~workers ~strategy =
  {
    D.default_config with
    workers;
    strategy;
    steal;
    (* small morsels so the modest test deltas split into many *)
    morsel_tuples = 16;
    coord = { D.Coord.default_config with timeout = Some 60. };
  }

let test_differential () =
  List.iter
    (fun (qname, src, params, edb, out) ->
      let expected = oracle ?params src edb out in
      Alcotest.(check bool) (qname ^ ": oracle nonempty") true (expected <> []);
      List.iter
        (fun steal ->
          List.iter
            (fun (sname, strategy) ->
              List.iter
                (fun workers ->
                  let label =
                    Printf.sprintf "%s steal=%b %s w=%d" qname steal sname workers
                  in
                  let config = config ~steal ~workers ~strategy in
                  match
                    D.query ?params ~config src
                      ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb)
                  with
                  | Error e -> Alcotest.fail (label ^ ": " ^ e)
                  | Ok r ->
                    Alcotest.(check bool) (label ^ ": fixpoint = oracle") true
                      (D.relation r out = expected);
                    (* exact termination: nothing in flight at the end,
                       stolen emissions included *)
                    Alcotest.(check int)
                      (label ^ ": sent = drained")
                      (D.Run_stats.total_sent r.stats)
                      (D.Run_stats.total_drained r.stats))
                [ 1; 4 ])
            strategies)
        [ true; false ])
    (cases ())

(* With one worker, or stealing disabled, no steal may ever happen; at
   4 workers with tiny morsels on the skewed graph, the board must see
   real traffic in at least one configuration (the counters are what the
   bench gate reads, so prove they move). *)
let test_counters () =
  let qname, src, params, edb, out = List.hd (cases ()) in
  ignore qname;
  ignore out;
  let run ~steal ~workers =
    match
      D.query ?params ~config:(config ~steal ~workers ~strategy:D.Coord.dws) src
        ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb)
    with
    | Ok r -> r.stats
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "no steals with 1 worker" 0
    (D.Run_stats.total_steals (run ~steal:true ~workers:1));
  Alcotest.(check int) "no steals when disabled" 0
    (D.Run_stats.total_steals (run ~steal:false ~workers:4));
  let st = run ~steal:true ~workers:4 in
  Alcotest.(check bool) "morsels executed at 4 workers" true
    (D.Run_stats.sum_strata st (fun w -> w.D.Run_stats.morsels_executed) > 0)

(* Crash a thief mid-window: the victim's join must resolve through the
   failed-flag poll, never hang.  Legal outcomes per seed: a correct
   fixpoint (crash budget unspent or crash absorbed cleanly is
   impossible here — an injected crash always fails the run) or a clean
   Worker_crashed/Cancelled error. *)
let test_thief_crash_containment () =
  let _, src, params, edb, out = List.hd (cases ()) in
  let expected = oracle ?params src edb out in
  let clean = ref 0 and ok = ref 0 in
  for seed = 1 to 12 do
    let config =
      {
        (config ~steal:true ~workers:4 ~strategy:D.Coord.dws) with
        coord =
          { D.Coord.default_config with timeout = Some 60.; stall_window = Some 10. };
        fault =
          Some
            {
              D.Fault.off with
              seed;
              crash_prob = 0.25;
              crash_sites = [ D.Fault.Steal ];
              max_crashes = 1;
            };
      }
    in
    match
      D.query ?params ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb)
    with
    | Ok r ->
      incr ok;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: untouched run matches oracle" seed)
        true
        (D.relation r out = expected)
    | Error msg -> Alcotest.fail ("front end: " ^ msg)
    | exception D.Engine_error.Error (D.Engine_error.Worker_crashed _) -> incr clean
    | exception D.Engine_error.Error (D.Engine_error.Cancelled _) ->
      Alcotest.fail
        (Printf.sprintf "seed %d: run timed out — a victim join hung on a dead thief" seed)
    | exception e ->
      Alcotest.fail (Printf.sprintf "seed %d: raw exception %s" seed (Printexc.to_string e))
  done;
  (* with many claims per run, some seed must actually fire the crash —
     otherwise the Steal site was never exercised.  Clean fixpoints are
     legal too (a seed may crash before any overlap) but not required:
     the differential suite already covers the uncrashed path. *)
  ignore !ok;
  Alcotest.(check bool) "some seeds crashed a thief" true (!clean > 0)

let () =
  Printexc.record_backtrace true;
  Alcotest.run "steal"
    [
      ( "differential",
        [
          Alcotest.test_case "fixpoint invariance + exact termination" `Slow test_differential;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ("faults", [ Alcotest.test_case "thief crash containment" `Slow test_thief_crash_containment ]);
    ]
