(* Stress and robustness tests: deep recursion, many strata, wide
   fan-out, and parser fuzzing. *)

module D = Dcdatalog

let run ?(config = { D.default_config with workers = 2 }) ?params src edb =
  match D.query ?params ~config src ~edb:(List.map (fun (n, r) -> (n, D.tuples r)) edb) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_deep_chain_tc () =
  (* a 2000-vertex chain: 2000 iterations of the fixpoint, large closure *)
  let n = 2000 in
  let arc = List.init (n - 1) (fun i -> [ i; i + 1 ]) in
  (* tc would be n^2/2 = 2M tuples; reachability from vertex 0 keeps it linear *)
  let src = "reach(Y) <- arc(0, Y).\nreach(Y) <- reach(X), arc(X, Y)." in
  let r = run src [ ("arc", arc) ] in
  Alcotest.(check int) "every vertex reached" (n - 1) (D.relation_count r "reach");
  Alcotest.(check bool) "iterations ~ chain depth" true
    (D.Run_stats.total_iterations r.stats >= (n - 1) / 2)

let test_deep_chain_sssp_weighted () =
  let n = 1500 in
  let warc = List.init (n - 1) (fun i -> [ i; i + 1; 2 ]) in
  let r = run ~params:[ ("start", 0) ] D.Queries.sssp.source [ ("warc", warc) ] in
  let dist = D.relation r "results" in
  Alcotest.(check int) "all distances" n (List.length dist);
  Alcotest.(check (option (list int))) "farthest distance exact"
    (Some [ n - 1; 2 * (n - 1) ])
    (List.find_opt (fun row -> List.hd row = n - 1) dist)

let test_many_strata () =
  (* 30 chained strata: p0 -> p1 -> ... -> p29, alternating recursion *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "p0(X) <- base(X).\n";
  for i = 1 to 29 do
    Buffer.add_string buf (Printf.sprintf "p%d(X) <- p%d(X).\n" i (i - 1));
    if i mod 3 = 0 then
      Buffer.add_string buf (Printf.sprintf "p%d(Y) <- p%d(X), e(X, Y).\n" i i)
  done;
  let src = Buffer.contents buf in
  let r = run src [ ("base", [ [ 0 ] ]); ("e", [ [ 0; 1 ]; [ 1; 2 ] ]) ] in
  Alcotest.(check int) "30 strata evaluated" 30 (List.length r.stats.strata);
  Alcotest.(check int) "closure propagated through all strata" 3 (D.relation_count r "p29")

let test_wide_star_aggregate () =
  (* one hub with 20k spokes: a single gather merges 20k candidates *)
  let spokes = 20_000 in
  let warc = List.init spokes (fun i -> [ 0; i + 1; 1 + (i mod 7) ]) in
  let r = run ~params:[ ("start", 0) ] D.Queries.sssp.source [ ("warc", warc) ] in
  Alcotest.(check int) "all spokes reached" (spokes + 1) (D.relation_count r "results")

let test_duplicate_heavy_edb () =
  (* the same fact many times must behave as once *)
  let arc = List.concat (List.init 500 (fun _ -> [ [ 1; 2 ]; [ 2; 3 ] ])) in
  let r = run D.Queries.tc.source [ ("arc", arc) ] in
  Alcotest.(check int) "set semantics" 3 (D.relation_count r "tc")

let test_rule_explosion_bounded_by_dedup () =
  (* diamond chains double path counts exponentially; dedup keeps tuples linear *)
  let k = 18 in
  let arc =
    List.concat
      (List.init k (fun i ->
           let a = 3 * i and b1 = (3 * i) + 1 and b2 = (3 * i) + 2 and c = 3 * (i + 1) in
           [ [ a; b1 ]; [ a; b2 ]; [ b1; c ]; [ b2; c ] ]))
  in
  let src = "reach(Y) <- arc(0, Y).\nreach(Y) <- reach(X), arc(X, Y)." in
  let r = run src [ ("arc", arc) ] in
  (* 2^18 paths but only 3k+... distinct vertices *)
  Alcotest.(check int) "linear output despite exponential paths" (3 * k) (D.relation_count r "reach")

(* --- batched exchange: framing must never change the fixpoint --- *)

(* A graph rich enough that every worker produces multi-tuple flushes:
   a 3-regular-ish random digraph with weights. *)
let exchange_arc =
  let m = 900 and vertices = 300 in
  let st = ref 123456789 in
  let rand k =
    (* deterministic LCG so the test is reproducible *)
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod k
  in
  List.init m (fun _ ->
      let a = rand vertices and b = rand vertices in
      [ a; b; 1 + rand 9 ])

let fingerprint r name = D.relation r name

let run_exchange ~exchange ~batch_tuples ~workers ?params src edb =
  let config =
    { D.default_config with workers; exchange; batch_tuples; strategy = D.Coord.dws }
  in
  run ~config ?params src edb

(* Byte-identical fixpoints across exchange fabric x batch size x worker
   count: the batch framing is an encoding of the tuple stream, not a
   semantic change. *)
let test_batch_framing_invariance () =
  let arc2 = List.map (fun row -> [ List.nth row 0; List.nth row 1 ]) exchange_arc in
  let tc_expect =
    fingerprint (run_exchange ~exchange:D.Parallel.Spsc_exchange ~batch_tuples:0 ~workers:1
                   D.Queries.tc.source [ ("arc", arc2) ])
      "tc"
  in
  let sssp_expect =
    fingerprint (run_exchange ~exchange:D.Parallel.Spsc_exchange ~batch_tuples:0 ~workers:1
                   ~params:[ ("start", 0) ] D.Queries.sssp.source [ ("warc", exchange_arc) ])
      "results"
  in
  Alcotest.(check bool) "closure nonempty" true (List.length tc_expect > 1000);
  List.iter
    (fun exchange ->
      List.iter
        (fun batch_tuples ->
          List.iter
            (fun workers ->
              let label =
                Printf.sprintf "%s batch=%d workers=%d"
                  (match exchange with
                  | D.Parallel.Spsc_exchange -> "spsc"
                  | D.Parallel.Locked_exchange -> "locked")
                  batch_tuples workers
              in
              let tc =
                fingerprint
                  (run_exchange ~exchange ~batch_tuples ~workers D.Queries.tc.source
                     [ ("arc", arc2) ])
                  "tc"
              in
              Alcotest.(check bool) ("tc fixpoint identical: " ^ label) true (tc = tc_expect);
              let sssp =
                fingerprint
                  (run_exchange ~exchange ~batch_tuples ~workers ~params:[ ("start", 0) ]
                     D.Queries.sssp.source
                     [ ("warc", exchange_arc) ])
                  "results"
              in
              Alcotest.(check bool) ("sssp fixpoint identical: " ^ label) true (sssp = sssp_expect))
            [ 1; 4 ])
        [ 1; 64; 4096 ])
    [ D.Parallel.Spsc_exchange; D.Parallel.Locked_exchange ]

(* Counter assertion on the framing itself: at batch_tuples=1 every sent
   tuple is its own batch (the historical per-tuple costs), while
   unbounded batching must ship strictly fewer batch objects than tuples
   — i.e. at most one queue push / termination add per (copy, dest)
   flush actually carrying more than one tuple. *)
let test_batch_counters () =
  let arc2 = List.map (fun row -> [ List.nth row 0; List.nth row 1 ]) exchange_arc in
  let per_tuple =
    run_exchange ~exchange:D.Parallel.Spsc_exchange ~batch_tuples:1 ~workers:4
      D.Queries.tc.source [ ("arc", arc2) ]
  in
  let sent1 = D.Run_stats.total_sent per_tuple.stats in
  let batches1 = D.Run_stats.total_batches per_tuple.stats in
  Alcotest.(check bool) "workload exchanges tuples" true (sent1 > 0);
  Alcotest.(check int) "batch=1 degenerates to one batch per tuple" sent1 batches1;
  let batched =
    run_exchange ~exchange:D.Parallel.Spsc_exchange ~batch_tuples:0 ~workers:4
      D.Queries.tc.source [ ("arc", arc2) ]
  in
  let sent = D.Run_stats.total_sent batched.stats in
  let batches = D.Run_stats.total_batches batched.stats in
  Alcotest.(check bool) "batching amortizes: far fewer batches than tuples" true
    (batches * 4 < sent);
  (* each batch still accounts for its tuples in the termination-relevant
     sent counter *)
  Alcotest.(check bool) "sent counter stays tuple-denominated" true (sent >= batches)

(* --- flat arena engine vs the boxed naive interpreter --- *)

(* The arena/frame storage layer must be an invisible representation
   change: on each tracked recursion class (set-semantics TC, min-CC,
   min-SSSP) the packed engine and the boxed AST interpreter agree
   tuple-for-tuple, across worker counts and batch framings. *)
let test_arena_vs_boxed_oracle () =
  let vertices = 60 in
  let st = ref 987654321 in
  let rand k =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod k
  in
  let arc = List.init 180 (fun _ -> (rand vertices, rand vertices)) in
  let arc2 = List.map (fun (a, b) -> [ a; b ]) arc in
  let sym = List.concat_map (fun (a, b) -> [ [ a; b ]; [ b; a ] ]) arc in
  let warc = List.map (fun (a, b) -> [ a; b; 1 + rand 9 ]) arc in
  let oracle ?params src edb out =
    let rows =
      D.Naive.run ?params (D.Parser.parse_program src)
        ~edb:(List.map (fun (n, r) -> (n, List.map Array.of_list r)) edb)
    in
    match List.assoc_opt out rows with
    | Some l -> List.sort compare (List.map Array.to_list l)
    | None -> []
  in
  let cases =
    [
      ("tc", D.Queries.tc.source, None, [ ("arc", arc2) ], "tc");
      ("cc", D.Queries.cc.source, None, [ ("arc", sym) ], "cc");
      ("sssp", D.Queries.sssp.source, Some [ ("start", 0) ], [ ("warc", warc) ], "results");
    ]
  in
  List.iter
    (fun (name, src, params, edb, out) ->
      let want = oracle ?params src edb out in
      Alcotest.(check bool) (name ^ ": oracle nonempty") true (want <> []);
      List.iter
        (fun workers ->
          List.iter
            (fun batch_tuples ->
              let config =
                { D.default_config with workers; batch_tuples; strategy = D.Coord.dws }
              in
              let r = run ~config ?params src edb in
              Alcotest.(check bool)
                (Printf.sprintf "%s = oracle at workers=%d batch=%d" name workers batch_tuples)
                true
                (D.relation r out = want))
            [ 1; 4096 ])
        [ 1; 4 ])
    cases

(* the parser/analyzer must reject or accept random garbage without ever
   raising anything but its own error types *)
let prop_frontend_total =
  QCheck.Test.make ~name:"front end never crashes on garbage" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun src ->
      match D.prepare src with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "unexpected exception %s" (Printexc.to_string e))

let prop_frontend_total_tokens =
  (* structured garbage: random sequences of plausible tokens *)
  QCheck.Test.make ~name:"front end never crashes on token soup" ~count:500
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 25)
           (oneofl
              [ "p"; "q"; "X"; "Y"; "("; ")"; ","; "."; "<-"; "min"; "<"; ">"; "="; "!"; "1"; "+" ])))
    (fun toks ->
      let src = String.concat " " toks in
      match D.prepare src with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "unexpected exception %s" (Printexc.to_string e))

let () =
  Alcotest.run "stress"
    [
      ( "engine",
        [
          Alcotest.test_case "deep chain tc" `Slow test_deep_chain_tc;
          Alcotest.test_case "deep chain sssp" `Slow test_deep_chain_sssp_weighted;
          Alcotest.test_case "many strata" `Quick test_many_strata;
          Alcotest.test_case "wide star aggregate" `Quick test_wide_star_aggregate;
          Alcotest.test_case "duplicate-heavy edb" `Quick test_duplicate_heavy_edb;
          Alcotest.test_case "exponential paths, linear dedup" `Quick
            test_rule_explosion_bounded_by_dedup;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "batch framing invariance" `Slow test_batch_framing_invariance;
          Alcotest.test_case "batch counters" `Quick test_batch_counters;
          Alcotest.test_case "arena engine = boxed oracle" `Quick test_arena_vs_boxed_oracle;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_frontend_total;
          QCheck_alcotest.to_alcotest prop_frontend_total_tokens;
        ] );
    ]
