module Tuple = Dcd_storage.Tuple

let test_equal () =
  Alcotest.(check bool) "equal" true (Tuple.equal [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check bool) "unequal value" false (Tuple.equal [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check bool) "unequal arity" false (Tuple.equal [| 1 |] [| 1; 2 |]);
  Alcotest.(check bool) "empty tuples equal" true (Tuple.equal [||] [||])

let test_hash_consistent () =
  Alcotest.(check int) "hash deterministic" (Tuple.hash [| 3; 4 |]) (Tuple.hash [| 3; 4 |]);
  Alcotest.(check bool) "hash non-negative" true (Tuple.hash [| -5; max_int |] >= 0)

let test_hash_spread () =
  (* sequential keys should not collide in a tiny table's worth of buckets *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (Tuple.hash [| i |] land 4095) ()
  done;
  Alcotest.(check bool) "good spread over 4096 buckets" true (Hashtbl.length seen > 700)

let test_hash_high_bits () =
  (* regression for the dead upper-half fold: small interned ids must
     reach the high hash bits too, or every power-of-two directory that
     consumes them via high bits degenerates to a few buckets *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen ((Tuple.hash [| i |] lsr 48) land 4095) ()
  done;
  Alcotest.(check bool) "good spread in bits 48..59" true (Hashtbl.length seen > 700)

let test_hash_avalanche () =
  (* flipping one input bit should flip roughly half the hash bits *)
  let popcount x =
    let c = ref 0 in
    for b = 0 to 62 do
      if (x lsr b) land 1 = 1 then incr c
    done;
    !c
  in
  let samples = ref 0 and flipped = ref 0 in
  for i = 0 to 199 do
    let base = [| (i * 2654435761) land 0xFFFFF; i |] in
    let h0 = Tuple.hash base in
    for bit = 0 to 19 do
      let t = Array.copy base in
      t.(i mod 2) <- t.(i mod 2) lxor (1 lsl bit);
      incr samples;
      flipped := !flipped + popcount (h0 lxor Tuple.hash t)
    done
  done;
  let mean = float_of_int !flipped /. float_of_int !samples in
  Alcotest.(check bool)
    (Printf.sprintf "mean flipped bits %.1f in [22, 41]" mean)
    true
    (mean > 22. && mean < 41.)

let test_hash_collision_rate () =
  (* distinct small tuples should essentially never collide on the full
     63-bit hash *)
  let seen = Hashtbl.create 4096 in
  let collisions = ref 0 in
  for a = 0 to 99 do
    for b = 0 to 99 do
      let h = Tuple.hash [| a; b |] in
      if Hashtbl.mem seen h then incr collisions else Hashtbl.add seen h ()
    done
  done;
  Alcotest.(check bool) "at most 1 collision in 10k" true (!collisions <= 1)

let test_project () =
  Alcotest.(check (array int)) "projection order" [| 30; 10 |]
    (Tuple.project [| 10; 20; 30 |] [| 2; 0 |]);
  Alcotest.(check (array int)) "empty projection" [||] (Tuple.project [| 1 |] [||])

let test_compare_matches_btree () =
  Alcotest.(check bool) "same order as btree keys" true
    (Tuple.compare [| 1; 2 |] [| 1; 3 |] < 0)

let test_to_string () =
  Alcotest.(check string) "render" "(1, 2, 3)" (Tuple.to_string [| 1; 2; 3 |]);
  Alcotest.(check string) "empty" "()" (Tuple.to_string [||])

let prop_equal_implies_hash =
  QCheck.Test.make ~name:"equal tuples hash equally" ~count:300 QCheck.(array small_int)
    (fun a -> Tuple.hash a = Tuple.hash (Array.copy a))

let () =
  Alcotest.run "tuple"
    [
      ( "unit",
        [
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "hash consistent" `Quick test_hash_consistent;
          Alcotest.test_case "hash spread" `Quick test_hash_spread;
          Alcotest.test_case "hash high bits" `Quick test_hash_high_bits;
          Alcotest.test_case "hash avalanche" `Quick test_hash_avalanche;
          Alcotest.test_case "hash collision rate" `Quick test_hash_collision_rate;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "compare" `Quick test_compare_matches_btree;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_equal_implies_hash ]);
    ]
