module Gen = Dcd_workload.Gen
module Graph = Dcd_workload.Graph
module Queries = Dcd_workload.Queries
module Datasets = Dcd_workload.Datasets
module Vec = Dcd_util.Vec
open Dcd_datalog

let test_rmat_deterministic () =
  let a = Gen.rmat ~seed:5 ~scale:8 ~edges:1000 () in
  let b = Gen.rmat ~seed:5 ~scale:8 ~edges:1000 () in
  Alcotest.(check int) "same size" (Graph.edge_count a) (Graph.edge_count b);
  Alcotest.(check bool) "same edges" true
    (Vec.to_list (Graph.edges a) = Vec.to_list (Graph.edges b));
  let c = Gen.rmat ~seed:6 ~scale:8 ~edges:1000 () in
  Alcotest.(check bool) "different seed differs" true
    (Vec.to_list (Graph.edges a) <> Vec.to_list (Graph.edges c))

let test_rmat_properties () =
  let g = Gen.rmat ~seed:5 ~scale:8 ~edges:1500 () in
  Alcotest.(check bool) "close to requested edges" true (Graph.edge_count g > 1200);
  Vec.iter
    (fun (u, v, w) ->
      if u = v then Alcotest.fail "self loop";
      if u < 0 || u > 255 || v < 0 || v > 255 then Alcotest.fail "vertex out of range";
      if w < 1 || w > 100 then Alcotest.fail "weight out of range")
    (Graph.edges g);
  (* no duplicate edges *)
  let seen = Hashtbl.create 1024 in
  Vec.iter
    (fun (u, v, _) ->
      if Hashtbl.mem seen (u, v) then Alcotest.fail "duplicate edge";
      Hashtbl.add seen (u, v) ())
    (Graph.edges g)

let test_rmat_skew () =
  (* the social parameterization must produce skewed out-degrees *)
  let g = Gen.rmat ~seed:5 ~scale:10 ~edges:10_000 () in
  let deg = Graph.out_degrees g in
  Array.sort compare deg;
  let top = deg.(Array.length deg - 1) in
  let avg = 10_000 / 1024 in
  Alcotest.(check bool) "hub degree >> average" true (top > 5 * avg)

let test_zipf_deterministic () =
  let a = Gen.zipf ~seed:11 ~n:512 ~edges:4000 () in
  let b = Gen.zipf ~seed:11 ~n:512 ~edges:4000 () in
  Alcotest.(check bool) "same seed same edge multiset" true
    (Vec.to_list (Graph.edges a) = Vec.to_list (Graph.edges b));
  let c = Gen.zipf ~seed:12 ~n:512 ~edges:4000 () in
  Alcotest.(check bool) "different seed differs" true
    (Vec.to_list (Graph.edges a) <> Vec.to_list (Graph.edges c))

let test_zipf_skew () =
  let g = Gen.zipf ~seed:11 ~n:1024 ~edges:10_000 () in
  Alcotest.(check bool) "close to requested edges" true (Graph.edge_count g > 8_000);
  let deg = Graph.out_degrees g in
  (* the rank-1 hub must own far more than its uniform share, and no
     self loops or duplicates survive *)
  Array.sort compare deg;
  let top = deg.(Array.length deg - 1) in
  let avg = Graph.edge_count g / 1024 in
  Alcotest.(check bool) "hub degree >> average" true (top > 20 * avg);
  let seen = Hashtbl.create 4096 in
  Vec.iter
    (fun (u, v, _) ->
      if u = v then Alcotest.fail "self loop";
      if Hashtbl.mem seen (u, v) then Alcotest.fail "duplicate edge";
      Hashtbl.add seen (u, v) ())
    (Graph.edges g)

let test_gnp_edge_count () =
  let g = Gen.gnp ~seed:9 ~n:500 ~p:0.01 () in
  let expected = int_of_float (500. *. 500. *. 0.01) in
  let count = Graph.edge_count g in
  Alcotest.(check bool) "within 20% of expectation" true
    (abs (count - expected) < expected / 5)

let test_random_tree_is_tree () =
  let g = Gen.random_tree ~seed:3 ~height:5 ~min_deg:2 ~max_deg:3 () in
  let parents = Hashtbl.create 64 in
  Vec.iter
    (fun (p, c, _) ->
      if Hashtbl.mem parents c then Alcotest.fail "vertex with two parents";
      Hashtbl.add parents c p)
    (Graph.edges g);
  Alcotest.(check bool) "root has no parent" true (not (Hashtbl.mem parents 0));
  Alcotest.(check int) "edges = vertices - 1" (Hashtbl.length parents) (Graph.edge_count g)

let test_bom_tree () =
  let g, basics = Gen.bom_tree ~seed:4 ~n:500 () in
  Alcotest.(check bool) "tree size close to n" true (Graph.edge_count g > 400);
  (* every leaf of the assembly graph must have a basic fact *)
  let has_children = Hashtbl.create 64 in
  Vec.iter (fun (p, _, _) -> Hashtbl.replace has_children p ()) (Graph.edges g);
  let basic_parts = List.map fst basics in
  Vec.iter
    (fun (_, c, _) ->
      if not (Hashtbl.mem has_children c) then
        if not (List.mem c basic_parts) then
          Alcotest.fail (Printf.sprintf "leaf %d without delivery days" c))
    (Graph.edges g);
  List.iter
    (fun (_, d) -> if d < 1 || d > 30 then Alcotest.fail "days out of range")
    basics

let test_components_known_answer () =
  let g = Gen.components ~seed:8 ~count:4 ~size:25 in
  (* evaluate CC on it: exactly 4 distinct labels *)
  let edb = Queries.arc_sym_edb g in
  let program = Parser.parse_program Queries.cc.source in
  let results =
    Dcd_engine.Naive.run program
      ~edb:(List.map (fun (n, v) -> (n, List.map Fun.id (Vec.to_list v))) edb)
  in
  let cc = List.assoc "cc" results in
  let labels = List.sort_uniq compare (List.map (fun t -> t.(1)) cc) in
  Alcotest.(check int) "4 components" 4 (List.length labels);
  Alcotest.(check int) "all vertices labelled" 100 (List.length cc)

let test_friendship () =
  let g, orgs = Gen.friendship ~seed:2 ~people:100 ~avg_friends:5 ~organizers:3 in
  Alcotest.(check (list int)) "organizers are 0..k-1" [ 0; 1; 2 ] orgs;
  Alcotest.(check bool) "roughly people*avg edges" true (Graph.edge_count g > 400)

let test_simple_shapes () =
  Alcotest.(check int) "chain edges" 9 (Graph.edge_count (Gen.chain ~n:10));
  Alcotest.(check int) "cycle edges" 10 (Graph.edge_count (Gen.cycle ~n:10));
  Alcotest.(check int) "star edges" 9 (Graph.edge_count (Gen.star ~n:10))

let test_edb_builders () =
  let g = Gen.chain ~n:4 in
  Alcotest.(check int) "arc" 3 (Vec.length (List.assoc "arc" (Queries.arc_edb g)));
  Alcotest.(check int) "sym doubles" 6 (Vec.length (List.assoc "arc" (Queries.arc_sym_edb g)));
  Alcotest.(check int) "warc arity 3" 3
    (Array.length (Vec.get (List.assoc "warc" (Queries.warc_edb g)) 0));
  let matrix = List.assoc "matrix" (Queries.matrix_edb g) in
  Vec.iter (fun t -> Alcotest.(check int) "out degree column" 1 t.(2)) matrix

let test_all_query_sources_compile () =
  List.iter
    (fun (spec : Queries.spec) ->
      match Analysis.analyze (Parser.parse_program spec.source) with
      | Ok info -> (
        match Dcd_planner.Physical.compile ~params:spec.default_params info with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (spec.name ^ " plan error: " ^ e))
      | Error e -> Alcotest.fail (spec.name ^ " analysis error: " ^ e))
    Queries.all

let test_query_find () =
  Alcotest.(check bool) "find existing" true (Queries.find "sssp" <> None);
  Alcotest.(check bool) "find missing" true (Queries.find "nope" = None)

let test_datasets_lazy_and_scaled () =
  Datasets.set_scale_factor 0.01;
  let g = Lazy.force Datasets.livejournal_sim.graph in
  Alcotest.(check bool) "scaled down" true (Graph.edge_count g < 5_000);
  Datasets.set_scale_factor 1.0;
  Alcotest.(check bool) "registry find" true (Datasets.find "orkut-sim" <> None);
  Alcotest.(check int) "rmat family size" 640
    (Graph.edge_count (Datasets.rmat 64))

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "rmat deterministic" `Quick test_rmat_deterministic;
          Alcotest.test_case "rmat properties" `Quick test_rmat_properties;
          Alcotest.test_case "rmat skew" `Quick test_rmat_skew;
          Alcotest.test_case "zipf deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "gnp edge count" `Quick test_gnp_edge_count;
          Alcotest.test_case "random tree" `Quick test_random_tree_is_tree;
          Alcotest.test_case "bom tree" `Quick test_bom_tree;
          Alcotest.test_case "components known answer" `Quick test_components_known_answer;
          Alcotest.test_case "friendship" `Quick test_friendship;
          Alcotest.test_case "simple shapes" `Quick test_simple_shapes;
        ] );
      ( "queries",
        [
          Alcotest.test_case "edb builders" `Quick test_edb_builders;
          Alcotest.test_case "all sources compile" `Quick test_all_query_sources_compile;
          Alcotest.test_case "find" `Quick test_query_find;
          Alcotest.test_case "datasets" `Quick test_datasets_lazy_and_scaled;
        ] );
    ]
