module Q = Dcd_concurrent.Ws_deque

let test_lifo_fifo () =
  let q = Q.create () in
  Alcotest.(check bool) "fresh empty" true (Q.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Q.pop q);
  Alcotest.(check (option int)) "steal empty" None (Q.steal q);
  for i = 1 to 5 do
    Q.push q i
  done;
  Alcotest.(check int) "size" 5 (Q.size q);
  (* owner pops the newest, thief steals the oldest *)
  Alcotest.(check (option int)) "pop newest" (Some 5) (Q.pop q);
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Q.steal q);
  Alcotest.(check (option int)) "steal next" (Some 2) (Q.steal q);
  Alcotest.(check (option int)) "pop" (Some 4) (Q.pop q);
  Alcotest.(check (option int)) "pop last" (Some 3) (Q.pop q);
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_growth () =
  (* push far past the initial capacity; nothing may be lost or reordered *)
  let q = Q.create ~capacity:2 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Q.push q i
  done;
  Alcotest.(check int) "all present" n (Q.size q);
  for i = 0 to (n / 2) - 1 do
    Alcotest.(check (option int)) "fifo from top" (Some i) (Q.steal q)
  done;
  for i = n - 1 downto n / 2 do
    Alcotest.(check (option int)) "lifo from bottom" (Some i) (Q.pop q)
  done;
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_interleaved_reuse () =
  let q = Q.create ~capacity:4 () in
  for round = 0 to 99 do
    for i = 0 to 7 do
      Q.push q ((round * 8) + i)
    done;
    for _ = 0 to 3 do
      if Q.pop q = None then Alcotest.fail "pop lost an element"
    done;
    for _ = 0 to 3 do
      if Q.steal q = None then Alcotest.fail "steal lost an element"
    done
  done;
  Alcotest.(check bool) "balanced" true (Q.is_empty q)

(* One owner domain pushing and popping, several thief domains stealing:
   every pushed element must be claimed by exactly one side, no element
   lost, none duplicated.  This is the exactly-once property the morsel
   pending counters build on. *)
let test_concurrent_exactly_once () =
  let q = Q.create ~capacity:8 () in
  let n = 50_000 in
  let thieves = 3 in
  let done_ = Atomic.make false in
  let stolen_sum = Atomic.make 0 in
  let stolen_count = Atomic.make 0 in
  let thief () =
    let sum = ref 0 and count = ref 0 in
    while not (Atomic.get done_ && Q.is_empty q) do
      match Q.steal q with
      | Some v ->
        sum := !sum + v;
        incr count
      | None -> Domain.cpu_relax ()
    done;
    ignore (Atomic.fetch_and_add stolen_sum !sum);
    ignore (Atomic.fetch_and_add stolen_count !count)
  in
  let ds = List.init thieves (fun _ -> Domain.spawn thief) in
  let own_sum = ref 0 and own_count = ref 0 in
  for i = 1 to n do
    Q.push q i;
    (* pop roughly half back, so both ends stay contended *)
    if i land 1 = 0 then
      match Q.pop q with
      | Some v ->
        own_sum := !own_sum + v;
        incr own_count
      | None -> ()
  done;
  (* drain what's left from the owner side *)
  let continue_ = ref true in
  while !continue_ do
    match Q.pop q with
    | Some v ->
      own_sum := !own_sum + v;
      incr own_count
    | None -> if Q.is_empty q then continue_ := false
  done;
  Atomic.set done_ true;
  List.iter Domain.join ds;
  let total = !own_count + Atomic.get stolen_count in
  let sum = !own_sum + Atomic.get stolen_sum in
  Alcotest.(check int) "every element claimed exactly once" n total;
  Alcotest.(check int) "claimed values are the pushed values" (n * (n + 1) / 2) sum

let () =
  Alcotest.run "ws_deque"
    [
      ( "unit",
        [
          Alcotest.test_case "lifo/fifo" `Quick test_lifo_fifo;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "interleaved reuse" `Quick test_interleaved_reuse;
        ] );
      ("concurrent", [ Alcotest.test_case "exactly once" `Slow test_concurrent_exactly_once ]);
    ]
